type mode = Global | Local | Semiglobal

type op = Match | Mismatch | Insert | Delete

type t = {
  score : int;
  query_start : int;
  query_end : int;
  subject_start : int;
  subject_end : int;
  ops : op list;
  aligned_query : string;
  aligned_subject : string;
}

let neg_inf = min_int / 4

(* Cell states for Gotoh's three-matrix recurrence. *)
let st_m = 0 (* diagonal: letters aligned *)
let st_x = 1 (* gap in subject: query letter consumed *)
let st_y = 2 (* gap in query: subject letter consumed *)

(* Traceback codes. For M: where the diagonal step came from (or local
   start). For X/Y: whether the gap opens (from M or the other gap state)
   or extends. *)
let tb_start = 0
let tb_from_m = 1
let tb_from_x = 2
let tb_from_y = 3

let align ?(mode = Local) ?(matrix = Scoring.dna_default) ?(gap = Scoring.default_gap)
    ~query ~subject () =
  let n = String.length query and m = String.length subject in
  let open_cost = gap.Scoring.open_penalty + gap.Scoring.extend_penalty in
  let ext_cost = gap.Scoring.extend_penalty in
  let mm = Array.make_matrix (n + 1) (m + 1) neg_inf in
  let mx = Array.make_matrix (n + 1) (m + 1) neg_inf in
  let my = Array.make_matrix (n + 1) (m + 1) neg_inf in
  let tbm = Array.make_matrix (n + 1) (m + 1) tb_start in
  let tbx = Array.make_matrix (n + 1) (m + 1) tb_start in
  let tby = Array.make_matrix (n + 1) (m + 1) tb_start in
  (* Initialisation *)
  mm.(0).(0) <- 0;
  for i = 1 to n do
    (match mode with
    | Global | Semiglobal ->
        mx.(i).(0) <- -(open_cost + ((i - 1) * ext_cost));
        tbx.(i).(0) <- (if i = 1 then tb_from_m else tb_from_x)
    | Local -> ());
    if mode = Local then mm.(i).(0) <- 0
  done;
  for j = 1 to m do
    (match mode with
    | Global ->
        my.(0).(j) <- -(open_cost + ((j - 1) * ext_cost));
        tby.(0).(j) <- (if j = 1 then tb_from_m else tb_from_y)
    | Semiglobal | Local -> mm.(0).(j) <- 0)
  done;
  (* Fill *)
  for i = 1 to n do
    let qc = query.[i - 1] in
    let mm_prev = mm.(i - 1) and mx_prev = mx.(i - 1) and my_prev = my.(i - 1) in
    let mm_row = mm.(i) and mx_row = mx.(i) and my_row = my.(i) in
    for j = 1 to m do
      let s = Scoring.score matrix qc subject.[j - 1] in
      (* M: diagonal *)
      let dm = mm_prev.(j - 1) and dx = mx_prev.(j - 1) and dy = my_prev.(j - 1) in
      let best_diag, src =
        if dm >= dx && dm >= dy then (dm, tb_from_m)
        else if dx >= dy then (dx, tb_from_x)
        else (dy, tb_from_y)
      in
      let mval = best_diag + s in
      if mode = Local && mval < 0 then begin
        mm_row.(j) <- 0;
        tbm.(i).(j) <- tb_start
      end
      else begin
        mm_row.(j) <- mval;
        tbm.(i).(j) <- src
      end;
      (* X: gap in subject (vertical move, consumes query letter) *)
      let open_from = max mm_prev.(j) my_prev.(j) in
      let open_src = if mm_prev.(j) >= my_prev.(j) then tb_from_m else tb_from_y in
      let xv_open = open_from - open_cost in
      let xv_ext = mx_prev.(j) - ext_cost in
      if xv_open >= xv_ext then begin
        mx_row.(j) <- xv_open;
        tbx.(i).(j) <- open_src
      end
      else begin
        mx_row.(j) <- xv_ext;
        tbx.(i).(j) <- tb_from_x
      end;
      (* Y: gap in query (horizontal move, consumes subject letter) *)
      let open_from = max mm_row.(j - 1) mx_row.(j - 1) in
      let open_src = if mm_row.(j - 1) >= mx_row.(j - 1) then tb_from_m else tb_from_x in
      let yv_open = open_from - open_cost in
      let yv_ext = my_row.(j - 1) - ext_cost in
      if yv_open >= yv_ext then begin
        my_row.(j) <- yv_open;
        tby.(i).(j) <- open_src
      end
      else begin
        my_row.(j) <- yv_ext;
        tby.(i).(j) <- tb_from_y
      end
    done
  done;
  (* Locate the answer cell *)
  let best_of_cell i j =
    let a = mm.(i).(j) and b = mx.(i).(j) and c = my.(i).(j) in
    if a >= b && a >= c then (a, st_m) else if b >= c then (b, st_x) else (c, st_y)
  in
  let end_i, end_j, end_state, score =
    match mode with
    | Global ->
        let v, st = best_of_cell n m in
        (n, m, st, v)
    | Semiglobal ->
        let best = ref (neg_inf, m, st_m) in
        for j = 0 to m do
          let v, st = best_of_cell n j in
          let bv, _, _ = !best in
          if v > bv then best := (v, j, st)
        done;
        let v, j, st = !best in
        (n, j, st, v)
    | Local ->
        let best = ref (0, 0, 0) in
        let best_v = ref 0 in
        for i = 0 to n do
          for j = 0 to m do
            if mm.(i).(j) > !best_v then begin
              best_v := mm.(i).(j);
              best := (i, j, st_m)
            end
          done
        done;
        let i, j, st = !best in
        (i, j, st, !best_v)
  in
  (* Traceback *)
  let ops = ref [] in
  let qa = Buffer.create 64 and sa = Buffer.create 64 in
  let i = ref end_i and j = ref end_j and state = ref end_state in
  let continue = ref true in
  while !continue do
    if !state = st_m then begin
      if !i = 0 && !j = 0 then continue := false
      else if mode = Local && tbm.(!i).(!j) = tb_start && mm.(!i).(!j) = 0 && (!i = 0 || !j = 0)
      then continue := false
      else if mode = Local && tbm.(!i).(!j) = tb_start then continue := false
      else if (mode = Semiglobal || mode = Local) && !i = 0 then continue := false
      else if !i > 0 && !j > 0 then begin
        let qc = query.[!i - 1] and sc = subject.[!j - 1] in
        ops := (if Char.uppercase_ascii qc = Char.uppercase_ascii sc then Match else Mismatch) :: !ops;
        Buffer.add_char qa qc;
        Buffer.add_char sa sc;
        let src = tbm.(!i).(!j) in
        decr i;
        decr j;
        state := (if src = tb_from_m then st_m else if src = tb_from_x then st_x else st_y)
      end
      else continue := false
    end
    else if !state = st_x then begin
      (* consumed a query letter against a gap *)
      ops := Insert :: !ops;
      Buffer.add_char qa query.[!i - 1];
      Buffer.add_char sa '-';
      let src = tbx.(!i).(!j) in
      decr i;
      state := (if src = tb_from_x then st_x else if src = tb_from_y then st_y else st_m)
    end
    else begin
      ops := Delete :: !ops;
      Buffer.add_char qa '-';
      Buffer.add_char sa subject.[!j - 1];
      let src = tby.(!i).(!j) in
      decr j;
      state := (if src = tb_from_y then st_y else if src = tb_from_x then st_x else st_m)
    end
  done;
  let rev_string buf =
    let s = Buffer.contents buf in
    String.init (String.length s) (fun k -> s.[String.length s - 1 - k])
  in
  {
    score;
    query_start = !i;
    query_end = end_i;
    subject_start = !j;
    subject_end = end_j;
    ops = !ops;
    aligned_query = rev_string qa;
    aligned_subject = rev_string sa;
  }

let align_seq ?mode ?matrix ?gap ~query ~subject () =
  let module Seq = Genalg_gdt.Sequence in
  let matrix =
    match matrix with
    | Some m -> m
    | None ->
        if Seq.alphabet query = Seq.Protein && Seq.alphabet subject = Seq.Protein then
          Scoring.blosum62
        else Scoring.dna_default
  in
  align ?mode ~matrix ?gap ~query:(Seq.to_string query) ~subject:(Seq.to_string subject) ()

(* Score-only variant with two rolling rows per state: O(m) memory. *)
let score_only ?(mode = Local) ?(matrix = Scoring.dna_default)
    ?(gap = Scoring.default_gap) ~query ~subject () =
  let n = String.length query and m = String.length subject in
  let open_cost = gap.Scoring.open_penalty + gap.Scoring.extend_penalty in
  let ext_cost = gap.Scoring.extend_penalty in
  let mm_prev = Array.make (m + 1) neg_inf in
  let mx_prev = Array.make (m + 1) neg_inf in
  let my_prev = Array.make (m + 1) neg_inf in
  let mm_cur = Array.make (m + 1) neg_inf in
  let mx_cur = Array.make (m + 1) neg_inf in
  let my_cur = Array.make (m + 1) neg_inf in
  mm_prev.(0) <- 0;
  for j = 1 to m do
    match mode with
    | Global -> my_prev.(j) <- -(open_cost + ((j - 1) * ext_cost))
    | Semiglobal | Local -> mm_prev.(j) <- 0
  done;
  let best_local = ref 0 in
  for i = 1 to n do
    let qc = query.[i - 1] in
    mm_cur.(0) <- (if mode = Local then 0 else neg_inf);
    mx_cur.(0) <-
      (match mode with
      | Global | Semiglobal -> -(open_cost + ((i - 1) * ext_cost))
      | Local -> neg_inf);
    my_cur.(0) <- neg_inf;
    for j = 1 to m do
      let s = Scoring.score matrix qc subject.[j - 1] in
      let diag = max mm_prev.(j - 1) (max mx_prev.(j - 1) my_prev.(j - 1)) in
      let mval = diag + s in
      mm_cur.(j) <- (if mode = Local && mval < 0 then 0 else mval);
      if mode = Local && mm_cur.(j) > !best_local then best_local := mm_cur.(j);
      mx_cur.(j) <- max (max mm_prev.(j) my_prev.(j) - open_cost) (mx_prev.(j) - ext_cost);
      my_cur.(j) <- max (max mm_cur.(j - 1) mx_cur.(j - 1) - open_cost) (my_cur.(j - 1) - ext_cost)
    done;
    Array.blit mm_cur 0 mm_prev 0 (m + 1);
    Array.blit mx_cur 0 mx_prev 0 (m + 1);
    Array.blit my_cur 0 my_prev 0 (m + 1)
  done;
  match mode with
  | Global -> max mm_prev.(m) (max mx_prev.(m) my_prev.(m))
  | Semiglobal ->
      let best = ref neg_inf in
      for j = 0 to m do
        best := max !best (max mm_prev.(j) (max mx_prev.(j) my_prev.(j)))
      done;
      !best
  | Local -> !best_local

(* Banded global Gotoh: only cells with |i - j| <= band are computed;
   everything outside the band stays at neg_inf. *)
let banded_score ~band ?(matrix = Scoring.dna_default) ?(gap = Scoring.default_gap)
    ~query ~subject () =
  let n = String.length query and m = String.length subject in
  if band < 0 then invalid_arg "Pairwise.banded_score: negative band";
  if band < abs (n - m) then
    invalid_arg "Pairwise.banded_score: band narrower than the length difference";
  let open_cost = gap.Scoring.open_penalty + gap.Scoring.extend_penalty in
  let ext_cost = gap.Scoring.extend_penalty in
  let mm_prev = Array.make (m + 1) neg_inf in
  let mx_prev = Array.make (m + 1) neg_inf in
  let my_prev = Array.make (m + 1) neg_inf in
  let mm_cur = Array.make (m + 1) neg_inf in
  let mx_cur = Array.make (m + 1) neg_inf in
  let my_cur = Array.make (m + 1) neg_inf in
  mm_prev.(0) <- 0;
  for j = 1 to min m band do
    my_prev.(j) <- -(open_cost + ((j - 1) * ext_cost))
  done;
  for i = 1 to n do
    let qc = query.[i - 1] in
    let lo = max 1 (i - band) and hi = min m (i + band) in
    (* reset the row inside (and just around) the band *)
    for j = max 0 (lo - 1) to hi do
      mm_cur.(j) <- neg_inf;
      mx_cur.(j) <- neg_inf;
      my_cur.(j) <- neg_inf
    done;
    if i - band <= 0 then
      mx_cur.(0) <- -(open_cost + ((i - 1) * ext_cost));
    for j = lo to hi do
      let s = Scoring.score matrix qc subject.[j - 1] in
      let diag = max mm_prev.(j - 1) (max mx_prev.(j - 1) my_prev.(j - 1)) in
      if diag > neg_inf then mm_cur.(j) <- diag + s;
      let x_open = max mm_prev.(j) my_prev.(j) in
      let xv =
        max (if x_open > neg_inf then x_open - open_cost else neg_inf)
          (if mx_prev.(j) > neg_inf then mx_prev.(j) - ext_cost else neg_inf)
      in
      mx_cur.(j) <- xv;
      let y_open = max mm_cur.(j - 1) mx_cur.(j - 1) in
      let yv =
        max (if y_open > neg_inf then y_open - open_cost else neg_inf)
          (if my_cur.(j - 1) > neg_inf then my_cur.(j - 1) - ext_cost else neg_inf)
      in
      my_cur.(j) <- yv
    done;
    Array.blit mm_cur 0 mm_prev 0 (m + 1);
    Array.blit mx_cur 0 mx_prev 0 (m + 1);
    Array.blit my_cur 0 my_prev 0 (m + 1);
    (* the column 0 boundary leaves the band once i > band *)
    if i - band > 0 then begin
      mm_prev.(0) <- neg_inf;
      mx_prev.(0) <- neg_inf;
      my_prev.(0) <- neg_inf
    end
  done;
  max mm_prev.(m) (max mx_prev.(m) my_prev.(m))

let identity t =
  match t.ops with
  | [] -> 0.
  | ops ->
      let matches = List.length (List.filter (fun o -> o = Match) ops) in
      float_of_int matches /. float_of_int (List.length ops)

let pp ppf t =
  let midline =
    String.init (String.length t.aligned_query) (fun k ->
        let q = t.aligned_query.[k] and s = t.aligned_subject.[k] in
        if q = '-' || s = '-' then ' '
        else if Char.uppercase_ascii q = Char.uppercase_ascii s then '|'
        else '.')
  in
  Format.fprintf ppf "score %d, identity %.1f%%@.Q %4d %s %d@.       %s@.S %4d %s %d"
    t.score (100. *. identity t) (t.query_start + 1) t.aligned_query t.query_end midline
    (t.subject_start + 1) t.aligned_subject t.subject_end
