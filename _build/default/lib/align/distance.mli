(** Simple string distances used by reconciliation and tests. *)

val levenshtein : string -> string -> int
(** Unit-cost edit distance, O(n·m) time, O(min n m) space. *)

val hamming : string -> string -> int option
(** Positions that differ; [None] when the lengths differ. *)

val similarity : string -> string -> float
(** [1 - levenshtein/max-length], in [0, 1]; two empty strings are 1. *)
