(** Longest common subsequence and Myers diff.

    The paper's change-detection matrix (Figure 2) prescribes "the longest
    common subsequence approach, which is used in the UNIX diff command"
    for non-queryable flat-file sources. This module provides the LCS
    itself and an O(ND) Myers edit script over generic arrays; the ETL
    monitors instantiate it over record lines. *)

val length : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** LCS length in O(n·m) time, O(min n m) space. *)

val lcs : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> 'a list
(** One longest common subsequence, in order. *)

type 'a edit =
  | Keep of 'a    (** element common to both versions *)
  | Remove of 'a  (** element only in the old version *)
  | Add of 'a     (** element only in the new version *)

val diff : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> 'a edit list
(** Myers' greedy O((n+m)·D) edit script transforming the first array into
    the second; [Keep]s are maximal (the script embeds an LCS). *)

val apply : 'a edit list -> 'a array -> 'a array option
(** Replay an edit script against an old version; [None] when the script
    does not match (elements compared with polymorphic equality). *)

val edit_distance_of : 'a edit list -> int
(** Number of [Add]s plus [Remove]s. *)
