(** A BLAST-like seed-and-extend similarity search.

    The paper's [resembles] operator needs a fast heuristic comparator in
    addition to the exact Smith–Waterman of {!Pairwise} — this is our
    substitute for the external "BLAST family of similarity search
    programs" the paper integrates via wrappers. The classic pipeline:

    + index every subject k-mer,
    + find exact k-mer seeds shared with the query,
    + extend each seed in both directions without gaps under an X-drop
      rule,
    + optionally refine surviving HSPs with a windowed gapped alignment.

    No word-neighborhood expansion is performed (exact seeds only), so for
    proteins choose a small [k] (3 is customary). *)

type db

val make_db : ?k:int -> (string * string) list -> db
(** [make_db entries] indexes named subject sequences given as
    [(id, letters)] pairs. Default word size [k = 11] (DNA-appropriate).
    Raises [Invalid_argument] when [k < 2] or ids repeat. *)

val db_size : db -> int
val word_size : db -> int

type hit = {
  subject_id : string;
  score : int;                  (** ungapped HSP score, or gapped score *)
  query_start : int;            (** 0-based, inclusive *)
  query_end : int;              (** exclusive *)
  subject_start : int;
  subject_end : int;
  gapped : Pairwise.t option;   (** present when gapped refinement ran *)
}

val search :
  ?matrix:Scoring.t ->
  ?min_score:int ->
  ?x_drop:int ->
  ?gapped:bool ->
  db ->
  query:string ->
  hit list
(** Hits above [min_score] (default 16), best first, at most one per
    (subject, diagonal-band). [x_drop] (default 20) stops extension when
    the running score falls that far below the best seen. [gapped]
    (default false) re-aligns a window around each HSP with local DP.
    Defaults [matrix] to {!Scoring.dna_default}. *)

val best_hit : ?matrix:Scoring.t -> ?min_score:int -> db -> query:string -> hit option
