let levenshtein a b =
  let a, b = if String.length a < String.length b then (a, b) else (b, a) in
  let n = String.length a in
  let prev = Array.init (n + 1) Fun.id in
  let cur = Array.make (n + 1) 0 in
  String.iteri
    (fun j bj ->
      cur.(0) <- j + 1;
      for i = 1 to n do
        let cost = if a.[i - 1] = bj then 0 else 1 in
        cur.(i) <- min (min (prev.(i) + 1) (cur.(i - 1) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (n + 1))
    b;
  prev.(n)

let hamming a b =
  if String.length a <> String.length b then None
  else begin
    let d = ref 0 in
    String.iteri (fun i c -> if c <> b.[i] then incr d) a;
    Some !d
  end

let similarity a b =
  let n = max (String.length a) (String.length b) in
  if n = 0 then 1.
  else 1. -. (float_of_int (levenshtein a b) /. float_of_int n)
