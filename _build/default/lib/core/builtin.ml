open Genalg_gdt

let ok v = Ok v

let wrap_invalid f =
  match f () with
  | v -> v
  | exception Invalid_argument msg -> Error msg

(* Argument-destructuring helpers: implementations are only invoked after
   overload resolution, so shapes are guaranteed; [assert false] marks the
   impossible cases. *)
let seq1 f = function
  | [ (Value.VDna s | Value.VRna s | Value.VProtein_seq s) ] -> f s
  | _ -> assert false

let seq2 f = function
  | [ (Value.VDna a | Value.VRna a | Value.VProtein_seq a);
      (Value.VDna b | Value.VRna b | Value.VProtein_seq b) ] ->
      f a b
  | _ -> assert false

let reseq _original result =
  match Sequence.alphabet result with
  | Sequence.Dna -> Value.VDna result
  | Sequence.Rna -> Value.VRna result
  | Sequence.Protein -> Value.VProtein_seq result

let op name arg_sorts result_sort doc impl =
  { Signature.name; arg_sorts; result_sort; doc; impl }

let sequence_sorts = [ Sort.Dna; Sort.Rna; Sort.Protein_seq ]
let nucleotide_sorts = [ Sort.Dna; Sort.Rna ]

(* Register one operator per listed argument sort (simple overloading). *)
let for_each_sort sg sorts make =
  List.iter (fun s -> Signature.register_exn sg (make s)) sorts

let create () =
  let sg = Signature.create () in
  let reg = Signature.register_exn sg in

  (* ---- central dogma ------------------------------------------------ *)
  reg
    (op "transcribe" [ Sort.Gene ] Sort.Primary_transcript
       "RNA copy of a gene's sense strand (pre-mRNA)." (function
      | [ Value.VGene g ] -> ok (Value.VPrimary (Ops.transcribe g))
      | _ -> assert false));
  reg
    (op "splice" [ Sort.Primary_transcript ] Sort.Mrna
       "Excise introns from a primary transcript." (function
      | [ Value.VPrimary p ] -> ok (Value.VMrna (Ops.splice p))
      | _ -> assert false));
  reg
    (op "splice_uncertain" [ Sort.Primary_transcript ] (Sort.Uncertain Sort.Mrna)
       "Splice with uncertainty: canonical product plus exon-skipping variants."
       (function
      | [ Value.VPrimary p ] ->
          let u = Ops.splice_uncertain p in
          ok (Value.uncertain (Genalg_gdt.Uncertain.map (fun m -> Value.VMrna m) u))
      | _ -> assert false));
  reg
    (op "translate" [ Sort.Mrna ] Sort.Protein
       "Translate an mRNA from its first start codon." (function
      | [ Value.VMrna m ] ->
          Result.map (fun p -> Value.VProtein p) (Ops.translate m)
      | _ -> assert false));
  reg
    (op "decode" [ Sort.Gene ] Sort.Protein
       "translate(splice(transcribe(gene)))." (function
      | [ Value.VGene g ] -> Result.map (fun p -> Value.VProtein p) (Ops.decode g)
      | _ -> assert false));
  reg
    (op "reverse_transcribe" [ Sort.Rna ] Sort.Dna "mRNA to cDNA." (function
      | [ Value.VRna r ] ->
          wrap_invalid (fun () -> ok (Value.VDna (Ops.reverse_transcribe r)))
      | _ -> assert false));
  for_each_sort sg nucleotide_sorts (fun s ->
      op "translate_frame" [ s; Sort.Int ] Sort.Protein_seq
        "Raw translation of one reading frame (0-2)." (function
        | [ (Value.VDna seq | Value.VRna seq); Value.VInt frame ] ->
            wrap_invalid (fun () ->
                ok (Value.VProtein_seq (Ops.translate_frame ~frame seq)))
        | _ -> assert false));

  (* ---- generic sequence utilities ----------------------------------- *)
  for_each_sort sg sequence_sorts (fun s ->
      op "length" [ s ] Sort.Int "Number of letters."
        (seq1 (fun x -> ok (Value.VInt (Sequence.length x)))));
  for_each_sort sg sequence_sorts (fun s ->
      op "subsequence" [ s; Sort.Int; Sort.Int ] s
        "subsequence(s, pos, len), 0-based." (function
        | [ v; Value.VInt pos; Value.VInt len ] ->
            seq1
              (fun x ->
                wrap_invalid (fun () -> ok (reseq v (Sequence.sub x ~pos ~len))))
              [ v ]
        | _ -> assert false));
  for_each_sort sg sequence_sorts (fun s ->
      op "concat" [ s; s ] s "Concatenation of two sequences."
        (seq2 (fun a b ->
             wrap_invalid (fun () ->
                 let r = Sequence.append a b in
                 ok
                   (match Sequence.alphabet r with
                   | Sequence.Dna -> Value.VDna r
                   | Sequence.Rna -> Value.VRna r
                   | Sequence.Protein -> Value.VProtein_seq r)))));
  for_each_sort sg nucleotide_sorts (fun s ->
      op "complement" [ s ] s "Watson-Crick complement."
        (fun vs ->
          match vs with
          | [ v ] ->
              seq1
                (fun x -> wrap_invalid (fun () -> ok (reseq v (Sequence.complement x))))
                [ v ]
          | _ -> assert false));
  for_each_sort sg nucleotide_sorts (fun s ->
      op "reverse_complement" [ s ] s "Reverse complement."
        (fun vs ->
          match vs with
          | [ v ] ->
              seq1
                (fun x ->
                  wrap_invalid (fun () -> ok (reseq v (Sequence.reverse_complement x))))
                [ v ]
          | _ -> assert false));
  for_each_sort sg sequence_sorts (fun s ->
      op "contains" [ s; Sort.String ] Sort.Bool
        "True when the sequence contains the literal pattern." (function
        | [ v; Value.VString pat ] ->
            seq1 (fun x -> ok (Value.VBool (Sequence.contains ~pattern:pat x))) [ v ]
        | _ -> assert false));
  for_each_sort sg sequence_sorts (fun s ->
      op "find_motif" [ s; Sort.String ] (Sort.List Sort.Int)
        "All occurrence offsets of a pattern (0-based)." (function
        | [ v; Value.VString pat ] ->
            seq1
              (fun x ->
                let hits = Sequence.find_all ~pattern:pat x in
                ok (Value.vlist Sort.Int (List.map (fun i -> Value.VInt i) hits)))
              [ v ]
        | _ -> assert false));
  reg
    (op "transcribe_seq" [ Sort.Dna ] Sort.Rna
       "Sequence-level transcription (T to U)." (function
      | [ Value.VDna d ] -> ok (Value.VRna (Sequence.to_rna d))
      | _ -> assert false));

  (* ---- statistics ---------------------------------------------------- *)
  for_each_sort sg nucleotide_sorts (fun s ->
      op "gc_content" [ s ] Sort.Float "Fraction of G/C bases."
        (seq1 (fun x -> ok (Value.VFloat (Ops.gc_content x)))));
  for_each_sort sg nucleotide_sorts (fun s ->
      op "melting_temperature" [ s ] Sort.Float "Primer Tm in Celsius."
        (seq1 (fun x -> ok (Value.VFloat (Ops.melting_temperature x)))));
  reg
    (op "molecular_weight" [ Sort.Protein ] Sort.Float
       "Average molecular weight in daltons." (function
      | [ Value.VProtein p ] -> ok (Value.VFloat (Protein.molecular_weight p))
      | _ -> assert false));

  (* ---- ORFs and restriction ------------------------------------------ *)
  reg
    (op "find_orfs" [ Sort.Dna ] (Sort.List Sort.Dna)
       "ORF subsequences (>= 90 nt), longest first, both strands." (function
      | [ Value.VDna d ] ->
          let orfs = Ops.find_orfs d in
          ok
            (Value.vlist Sort.Dna
               (List.map (fun o -> Value.VDna (Ops.orf_sequence d o)) orfs))
      | _ -> assert false));
  reg
    (op "digest" [ Sort.Dna; Sort.String ] (Sort.List Sort.Dna)
       "Restriction fragments for a named enzyme." (function
      | [ Value.VDna d; Value.VString enzyme ] -> (
          match Ops.enzyme_by_name enzyme with
          | None -> Error (Printf.sprintf "unknown restriction enzyme %s" enzyme)
          | Some e ->
              ok (Value.vlist Sort.Dna (List.map (fun f -> Value.VDna f) (Ops.digest e d))))
      | _ -> assert false));

  (* ---- comparison ----------------------------------------------------- *)
  let comparable = [ (Sort.Dna, Sort.Dna); (Sort.Rna, Sort.Rna);
                     (Sort.Dna, Sort.Rna); (Sort.Rna, Sort.Dna);
                     (Sort.Protein_seq, Sort.Protein_seq) ]
  in
  List.iter
    (fun (sa, sb) ->
      Signature.register_exn sg
        (op "resembles" [ sa; sb ] Sort.Float
           "Normalised local-alignment similarity in [0,1]."
           (seq2 (fun a b -> wrap_invalid (fun () -> ok (Value.VFloat (Ops.resembles a b)))))))
    comparable;
  List.iter
    (fun (sa, sb) ->
      Signature.register_exn sg
        (op "identity" [ sa; sb ] Sort.Float "Global-alignment identity."
           (seq2 (fun a b -> wrap_invalid (fun () -> ok (Value.VFloat (Ops.identity a b)))))))
    comparable;
  List.iter
    (fun (sa, sb) ->
      Signature.register_exn sg
        (op "edit_distance" [ sa; sb ] Sort.Int "Levenshtein distance."
           (seq2 (fun a b -> ok (Value.VInt (Ops.edit_distance a b))))))
    comparable;

  reg
    (op "back_translate" [ Sort.Protein_seq ] Sort.Dna
       "Degenerate reverse translation (IUPAC consensus codons)." (function
      | [ Value.VProtein_seq p ] ->
          wrap_invalid (fun () -> ok (Value.VDna (Ops.back_translate p)))
      | _ -> assert false));
  reg
    (op "longest_repeat" [ Sort.Dna ] (Sort.List Sort.Int)
       "Positions and length of a longest repeated substring." (function
      | [ Value.VDna d ] ->
          ok
            (match Ops.longest_repeat d with
            | Some (p1, p2, len) ->
                Value.vlist Sort.Int [ Value.VInt p1; Value.VInt p2; Value.VInt len ]
            | None -> Value.vlist Sort.Int [])
      | _ -> assert false));

  (* ---- GDT accessors --------------------------------------------------- *)
  reg
    (op "gene_sequence" [ Sort.Gene ] Sort.Dna "A gene's genomic DNA." (function
      | [ Value.VGene g ] -> ok (Value.VDna g.Gene.dna)
      | _ -> assert false));
  reg
    (op "gene_id" [ Sort.Gene ] Sort.String "A gene's identifier." (function
      | [ Value.VGene g ] -> ok (Value.VString g.Gene.id)
      | _ -> assert false));
  reg
    (op "exon_count" [ Sort.Gene ] Sort.Int "Number of exons." (function
      | [ Value.VGene g ] -> ok (Value.VInt (Gene.exon_count g))
      | _ -> assert false));
  reg
    (op "protein_sequence" [ Sort.Protein ] Sort.Protein_seq
       "A protein's residues." (function
      | [ Value.VProtein p ] -> ok (Value.VProtein_seq p.Protein.residues)
      | _ -> assert false));
  reg
    (op "mrna_sequence" [ Sort.Mrna ] Sort.Rna "An mRNA's nucleotides." (function
      | [ Value.VMrna m ] -> ok (Value.VRna m.Transcript.rna)
      | _ -> assert false));
  reg
    (op "best" [ Sort.Uncertain Sort.Mrna ] Sort.Mrna
       "Highest-confidence alternative." (function
      | [ Value.VUncertain (_, u) ] -> ok (Genalg_gdt.Uncertain.best u)
      | _ -> assert false));
  reg
    (op "confidence" [ Sort.Uncertain Sort.Mrna ] Sort.Float
       "Confidence of the best alternative." (function
      | [ Value.VUncertain (_, u) ] ->
          ok (Value.VFloat (Genalg_gdt.Uncertain.best_confidence u))
      | _ -> assert false));
  sg

let default = create ()

let operator_names () =
  List.sort_uniq String.compare
    (List.map (fun o -> o.Signature.name) (Signature.operators (create ())))
