(** Many-sorted signatures with dynamic operator registration.

    A signature pairs operator names with their rank (argument sorts and
    result sort) and an implementation over {!Value.t}; the collection of
    sorts, carriers and functions forms the many-sorted algebra of paper
    section 4.2. Registration is open — "if required, the Genomics Algebra
    can be extended by new sorts and operations" — and names may be
    overloaded on argument sorts. *)

type operator = {
  name : string;
  arg_sorts : Sort.t list;
  result_sort : Sort.t;
  doc : string;
  impl : Value.t list -> (Value.t, string) result;
}

type t

val create : unit -> t
(** An empty signature. *)

val register : t -> operator -> (unit, string) result
(** Add an operator. Fails when an operator with the same name and
    argument sorts already exists. Names are case-insensitive. *)

val register_exn : t -> operator -> unit

val resolve : t -> string -> Sort.t list -> operator option
(** Exact overload resolution on argument sorts, with one widening rule:
    an [Int] argument satisfies a [Float] parameter. *)

val find_by_name : t -> string -> operator list
(** All overloads of a name. *)

val mem : t -> string -> bool

val operators : t -> operator list
(** Every registered operator, sorted by name then arity. *)

val cardinal : t -> int

val apply : t -> string -> Value.t list -> (Value.t, string) result
(** Resolve on the sorts of the given values and run the implementation;
    the result is checked against the declared result sort. *)

val rank_to_string : operator -> string
(** ["translate: mrna -> protein"] — the paper's functionality notation. *)

val merge : into:t -> t -> unit
(** Copy every operator of the second signature into [into], skipping
    exact duplicates. *)
