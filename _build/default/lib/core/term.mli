(** Terms over a signature, with sort checking and evaluation.

    A term is a constant, a sorted variable, or an operator application —
    e.g. the paper's [translate(splice(transcribe(g)))]. {!sort_check}
    verifies well-sortedness statically (every application resolves to a
    registered operator); {!eval} computes the value under a variable
    binding. *)

type t =
  | Const of Value.t
  | Var of string * Sort.t
  | App of string * t list

val const : Value.t -> t
val var : string -> Sort.t -> t
val app : string -> t list -> t

val sort_check :
  Signature.t -> env:(string * Sort.t) list -> t -> (Sort.t, string) result
(** The sort of the term, or the first sorting error. Variable sorts must
    agree with [env] when bound there. *)

val sort_check_closed : Signature.t -> t -> (Sort.t, string) result
(** Like {!sort_check} with an empty environment (variables are errors). *)

val eval :
  Signature.t -> env:(string -> Value.t option) -> t -> (Value.t, string) result

val eval_closed : Signature.t -> t -> (Value.t, string) result

val vars : t -> (string * Sort.t) list
(** Free variables in first-occurrence order, deduplicated. *)

val to_string : t -> string
(** Concrete syntax: [translate(splice(transcribe(g)))]. *)

val pp : Format.formatter -> t -> unit
