(** The built-in Genomics Algebra signature.

    Wraps every {!Ops} kernel function (and a set of generic sequence
    utilities) as registered {!Signature} operators so they can be used in
    terms, embedded into the extended SQL of the Unifying Database, and
    exposed through the biological query language. *)

val create : unit -> Signature.t
(** A fresh signature containing all built-in operators. *)

val default : Signature.t
(** A shared instance of {!create}; extend it freely — extensibility is a
    design goal (paper C13/C14). *)

val operator_names : unit -> string list
(** Names registered by {!create}, sorted, deduplicated. *)
