lib/core/builtin.mli: Signature
