lib/core/term.mli: Format Signature Sort Value
