lib/core/term.ml: Format List Printf Signature Sort String Value
