lib/core/sort.mli: Format
