lib/core/ontology.mli: Sort
