lib/core/signature.mli: Sort Value
