lib/core/value.ml: Amino_acid Chromosome Float Format Genalg_gdt Gene Genome List Nucleotide Printf Protein Sequence Sort String Transcript Uncertain
