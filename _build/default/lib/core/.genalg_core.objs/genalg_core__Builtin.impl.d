lib/core/builtin.ml: Genalg_gdt Gene List Ops Printf Protein Result Sequence Signature Sort String Transcript Value
