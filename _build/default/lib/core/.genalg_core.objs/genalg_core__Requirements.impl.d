lib/core/requirements.ml:
