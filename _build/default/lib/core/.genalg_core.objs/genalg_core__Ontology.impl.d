lib/core/ontology.ml: List Printf Sort String
