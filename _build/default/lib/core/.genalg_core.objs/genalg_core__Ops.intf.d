lib/core/ops.mli: Genalg_gdt Gene Genetic_code Protein Sequence Transcript Uncertain
