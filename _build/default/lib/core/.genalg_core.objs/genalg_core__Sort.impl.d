lib/core/sort.ml: Format List Option Printf Stdlib String
