lib/core/requirements.mli:
