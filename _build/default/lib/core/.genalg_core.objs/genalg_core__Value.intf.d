lib/core/value.mli: Amino_acid Chromosome Format Genalg_gdt Gene Genome Nucleotide Protein Sequence Sort Transcript Uncertain
