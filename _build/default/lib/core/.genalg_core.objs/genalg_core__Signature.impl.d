lib/core/signature.ml: Hashtbl List Printf Sort Stdlib String Value
