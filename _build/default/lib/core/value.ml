open Genalg_gdt

type t =
  | VBool of bool
  | VInt of int
  | VFloat of float
  | VString of string
  | VNucleotide of Nucleotide.t
  | VAmino_acid of Amino_acid.t
  | VDna of Sequence.t
  | VRna of Sequence.t
  | VProtein_seq of Sequence.t
  | VGene of Gene.t
  | VPrimary of Transcript.primary
  | VMrna of Transcript.mrna
  | VProtein of Protein.t
  | VChromosome of Chromosome.t
  | VGenome of Genome.t
  | VList of Sort.t * t list
  | VUncertain of Sort.t * t Uncertain.t

let sort_of = function
  | VBool _ -> Sort.Bool
  | VInt _ -> Sort.Int
  | VFloat _ -> Sort.Float
  | VString _ -> Sort.String
  | VNucleotide _ -> Sort.Nucleotide
  | VAmino_acid _ -> Sort.Amino_acid
  | VDna _ -> Sort.Dna
  | VRna _ -> Sort.Rna
  | VProtein_seq _ -> Sort.Protein_seq
  | VGene _ -> Sort.Gene
  | VPrimary _ -> Sort.Primary_transcript
  | VMrna _ -> Sort.Mrna
  | VProtein _ -> Sort.Protein
  | VChromosome _ -> Sort.Chromosome
  | VGenome _ -> Sort.Genome
  | VList (elt, _) -> Sort.List elt
  | VUncertain (elt, _) -> Sort.Uncertain elt

let dna s = VDna (Sequence.dna s)
let rna s = VRna (Sequence.rna s)
let protein_seq s = VProtein_seq (Sequence.protein s)

let vlist elt values =
  List.iter
    (fun v ->
      if not (Sort.equal (sort_of v) elt) then
        invalid_arg
          (Printf.sprintf "Value.vlist: element of sort %s in list(%s)"
             (Sort.to_string (sort_of v)) (Sort.to_string elt)))
    values;
  VList (elt, values)

let uncertain u =
  let sorts = List.map (fun a -> sort_of a.Uncertain.value) (Uncertain.alternatives u) in
  match sorts with
  | [] -> invalid_arg "Value.uncertain: empty"
  | first :: rest ->
      if List.for_all (Sort.equal first) rest then VUncertain (first, u)
      else invalid_arg "Value.uncertain: mixed sorts"

let rec equal a b =
  match a, b with
  | VBool x, VBool y -> x = y
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> Float.equal x y
  | VString x, VString y -> x = y
  | VNucleotide x, VNucleotide y -> Nucleotide.equal x y
  | VAmino_acid x, VAmino_acid y -> Amino_acid.equal x y
  | (VDna x | VRna x | VProtein_seq x), (VDna y | VRna y | VProtein_seq y)
    when Sort.equal (sort_of a) (sort_of b) ->
      Sequence.equal x y
  | VGene x, VGene y -> Gene.equal x y
  | VPrimary x, VPrimary y -> Transcript.equal_primary x y
  | VMrna x, VMrna y -> Transcript.equal_mrna x y
  | VProtein x, VProtein y -> Protein.equal x y
  | VChromosome x, VChromosome y -> Chromosome.equal x y
  | VGenome x, VGenome y -> Genome.equal x y
  | VList (sx, xs), VList (sy, ys) ->
      Sort.equal sx sy && List.length xs = List.length ys && List.for_all2 equal xs ys
  | VUncertain (sx, ux), VUncertain (sy, uy) ->
      Sort.equal sx sy && Uncertain.equal equal ux uy
  | _ -> false

let rec to_display_string = function
  | VBool b -> string_of_bool b
  | VInt i -> string_of_int i
  | VFloat f -> Printf.sprintf "%g" f
  | VString s -> s
  | VNucleotide n -> String.make 1 (Nucleotide.to_char n)
  | VAmino_acid a -> String.make 1 (Amino_acid.to_char a)
  | VDna s | VRna s | VProtein_seq s -> Sequence.to_string s
  | VGene g -> Format.asprintf "%a" Gene.pp g
  | VPrimary p -> Format.asprintf "%a" Transcript.pp_primary p
  | VMrna m -> Format.asprintf "%a" Transcript.pp_mrna m
  | VProtein p -> Format.asprintf "%a" Protein.pp p
  | VChromosome c -> Format.asprintf "%a" Chromosome.pp c
  | VGenome g -> Format.asprintf "%a" Genome.pp g
  | VList (_, vs) ->
      Printf.sprintf "[%s]" (String.concat "; " (List.map to_display_string vs))
  | VUncertain (_, u) ->
      let alts = Uncertain.alternatives u in
      String.concat " | "
        (List.map
           (fun a ->
             Printf.sprintf "%s@%.2f" (to_display_string a.Uncertain.value)
               a.Uncertain.confidence)
           alts)

let pp ppf v = Format.pp_print_string ppf (to_display_string v)

let type_err expected v =
  Error
    (Printf.sprintf "expected %s, got %s" expected (Sort.to_string (sort_of v)))

let to_bool = function VBool b -> Ok b | v -> type_err "bool" v
let to_int = function VInt i -> Ok i | v -> type_err "int" v

let to_float = function
  | VFloat f -> Ok f
  | VInt i -> Ok (float_of_int i)
  | v -> type_err "float" v

let to_string_value = function VString s -> Ok s | v -> type_err "string" v

let to_sequence = function
  | VDna s | VRna s | VProtein_seq s -> Ok s
  | v -> type_err "sequence" v
