type target =
  | Sort_target of Sort.t
  | Operation_target of string

type concept = {
  term : string;
  synonyms : string list;
  definition : string;
  context : string;
  target : target;
}

type t = { mutable concepts : concept list (* insertion order *) }

let create () = { concepts = [] }

let normalise s =
  String.concat " "
    (List.filter (fun w -> w <> "")
       (String.split_on_char ' ' (String.lowercase_ascii (String.trim s))))

let names c = List.map normalise (c.term :: c.synonyms)

let add t c =
  let clash =
    List.exists
      (fun existing ->
        existing.context = c.context && normalise existing.term = normalise c.term)
      t.concepts
  in
  if clash then
    Error (Printf.sprintf "term %S already defined in context %S" c.term c.context)
  else begin
    t.concepts <- t.concepts @ [ c ];
    Ok ()
  end

let add_exn t c =
  match add t c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ontology.add_exn: " ^ msg)

let resolve ?context t name =
  let n = normalise name in
  let matches = List.filter (fun c -> List.mem n (names c)) t.concepts in
  match context with
  | Some ctx -> (
      match List.find_opt (fun c -> c.context = ctx) matches with
      | Some _ as r -> r
      | None -> ( match matches with c :: _ -> Some c | [] -> None))
  | None -> ( match matches with c :: _ -> Some c | [] -> None)

let resolve_sort ?context t name =
  match resolve ?context t name with
  | Some { target = Sort_target s; _ } -> Some s
  | Some { target = Operation_target _; _ } | None -> None

let resolve_operation ?context t name =
  match resolve ?context t name with
  | Some { target = Operation_target o; _ } -> Some o
  | Some { target = Sort_target _; _ } | None -> None

let concepts t = t.concepts
let cardinal t = List.length t.concepts

let is_ambiguous t name =
  let n = normalise name in
  let contexts =
    List.filter_map
      (fun c -> if List.mem n (names c) then Some c.context else None)
      t.concepts
  in
  List.length (List.sort_uniq String.compare contexts) > 1

let mb = "molecular-biology"

let sort_concept term synonyms definition sort =
  { term; synonyms; definition; context = mb; target = Sort_target sort }

let op_concept term synonyms definition operation =
  { term; synonyms; definition; context = mb; target = Operation_target operation }

let default () =
  let t = create () in
  List.iter (add_exn t)
    [
      sort_concept "gene" [ "locus"; "genetic locus" ]
        "A heritable unit of genomic DNA with exon/intron structure." Sort.Gene;
      sort_concept "dna" [ "dna sequence"; "nucleotide sequence"; "genomic sequence" ]
        "A deoxyribonucleic-acid sequence." Sort.Dna;
      sort_concept "rna" [ "rna sequence"; "ribonucleic acid" ]
        "A ribonucleic-acid sequence." Sort.Rna;
      sort_concept "primary transcript" [ "pre-mrna"; "pre mrna"; "premrna" ]
        "The unspliced RNA copy of a gene." Sort.Primary_transcript;
      sort_concept "mrna" [ "messenger rna"; "mature mrna"; "transcript" ]
        "A spliced messenger RNA." Sort.Mrna;
      sort_concept "protein" [ "polypeptide"; "gene product" ]
        "A named amino-acid chain." Sort.Protein;
      sort_concept "peptide" [ "amino acid sequence"; "residue sequence" ]
        "A bare amino-acid sequence." Sort.Protein_seq;
      sort_concept "chromosome" [] "A chromosome with its annotations."
        Sort.Chromosome;
      sort_concept "genome" [ "complete genome" ] "An organism's chromosomes."
        Sort.Genome;
      sort_concept "nucleotide" [ "base" ] "A single nucleic-acid base."
        Sort.Nucleotide;
      sort_concept "amino acid" [ "residue" ] "A single protein residue."
        Sort.Amino_acid;
      op_concept "transcribe" [ "transcription" ]
        "Produce the primary transcript of a gene." "transcribe";
      op_concept "splice" [ "splicing" ] "Excise introns from a primary transcript."
        "splice";
      op_concept "translate" [ "translation" ]
        "Produce the protein encoded by an mRNA." "translate";
      op_concept "decode" [ "express" ] "Gene to protein, composed." "decode";
      op_concept "reverse transcribe" [ "reverse transcription" ]
        "mRNA to cDNA." "reverse_transcribe";
      op_concept "gc content" [ "gc fraction"; "gc percentage" ]
        "Fraction of guanine and cytosine bases." "gc_content";
      op_concept "contains" [ "has motif"; "contains motif" ]
        "Whether a sequence contains a literal pattern." "contains";
      op_concept "resembles" [ "similar to"; "is similar to"; "homologous to" ]
        "Normalised local-alignment similarity." "resembles";
      op_concept "reverse complement" [ "revcomp" ]
        "Reverse complement of a nucleotide sequence." "reverse_complement";
      op_concept "find orfs" [ "open reading frames"; "orfs" ]
        "Open reading frames of a DNA sequence." "find_orfs";
      op_concept "digest" [ "restriction digest" ]
        "Cut DNA with a restriction enzyme." "digest";
      op_concept "melting temperature" [ "tm" ] "Primer melting temperature."
        "melting_temperature";
      op_concept "molecular weight" [ "mass" ] "Protein molecular weight."
        "molecular_weight";
      op_concept "length" [ "size" ] "Sequence length." "length";
      (* a deliberate homonym pair, demonstrating context disambiguation:
         "expression" in molecular biology (gene expression = decode) vs in
         the query-language context (an expression tree) *)
      {
        term = "expression";
        synonyms = [];
        definition = "Gene expression: producing a protein from a gene.";
        context = mb;
        target = Operation_target "decode";
      };
      {
        term = "expression";
        synonyms = [];
        definition = "A query-language expression.";
        context = "query-language";
        target = Sort_target Sort.String;
      };
    ];
  t
