type t =
  | Bool
  | Int
  | Float
  | String
  | Nucleotide
  | Amino_acid
  | Dna
  | Rna
  | Protein_seq
  | Gene
  | Primary_transcript
  | Mrna
  | Protein
  | Chromosome
  | Genome
  | List of t
  | Uncertain of t

let rec to_string = function
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Nucleotide -> "nucleotide"
  | Amino_acid -> "aminoacid"
  | Dna -> "dna"
  | Rna -> "rna"
  | Protein_seq -> "proteinseq"
  | Gene -> "gene"
  | Primary_transcript -> "primarytranscript"
  | Mrna -> "mrna"
  | Protein -> "protein"
  | Chromosome -> "chromosome"
  | Genome -> "genome"
  | List inner -> Printf.sprintf "list(%s)" (to_string inner)
  | Uncertain inner -> Printf.sprintf "uncertain(%s)" (to_string inner)

let all_base =
  [ Bool; Int; Float; String; Nucleotide; Amino_acid; Dna; Rna; Protein_seq;
    Gene; Primary_transcript; Mrna; Protein; Chromosome; Genome ]

let rec of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let try_constructed prefix make =
    let pl = String.length prefix in
    if String.length s > pl + 1
       && String.sub s 0 (pl + 1) = prefix ^ "("
       && s.[String.length s - 1] = ')'
    then
      let inner = String.sub s (pl + 1) (String.length s - pl - 2) in
      Option.map make (of_string inner)
    else None
  in
  match List.find_opt (fun b -> to_string b = s) all_base with
  | Some b -> Some b
  | None -> (
      match try_constructed "list" (fun x -> List x) with
      | Some _ as r -> r
      | None -> try_constructed "uncertain" (fun x -> Uncertain x))

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp ppf t = Format.pp_print_string ppf (to_string t)
