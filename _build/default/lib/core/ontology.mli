(** A controlled vocabulary for molecular biology.

    Paper section 4.1: an ontology "establishes a standardised, formally
    and coherently defined nomenclature" whose entity types map to sorts
    and whose functions map to operators — "uniqueness of a term is an
    essential requirement to be able to map concepts into the Genomics
    Algebra". Concepts carry synonyms (the terminological differences of
    real repositories) and map onto either a sort or an operator name; the
    biological query language resolves user vocabulary through this
    module. Homonyms are disambiguated by context tags. *)

type target =
  | Sort_target of Sort.t
  | Operation_target of string  (** operator name in the signature *)

type concept = {
  term : string;             (** canonical, unique term *)
  synonyms : string list;
  definition : string;
  context : string;          (** e.g. ["molecular-biology"]; disambiguates homonyms *)
  target : target;
}

type t

val create : unit -> t
(** Empty ontology. *)

val default : unit -> t
(** The built-in vocabulary: the GDT sorts with their common synonyms
    (["sequence"], ["locus"], ["cds"], …) and the built-in operations
    (["translate"], ["gc content"], …). *)

val add : t -> concept -> (unit, string) result
(** Fails when the canonical term is already taken within the same
    context (the paper's uniqueness requirement). *)

val add_exn : t -> concept -> unit

val resolve : ?context:string -> t -> string -> concept option
(** Look a term or synonym up, case- and whitespace-insensitively. With
    [context], concepts of that context are preferred; otherwise the
    first match in insertion order wins. *)

val resolve_sort : ?context:string -> t -> string -> Sort.t option
val resolve_operation : ?context:string -> t -> string -> string option

val concepts : t -> concept list
val cardinal : t -> int

val is_ambiguous : t -> string -> bool
(** True when a term or synonym resolves in more than one context. *)
