open Genalg_gdt

(* ------------------------------------------------------------------ *)
(* Central dogma                                                       *)

let transcribe (g : Gene.t) =
  Transcript.primary ~gene_id:g.Gene.id ~exons:g.Gene.exons ~code:g.Gene.code
    (Sequence.to_rna g.Gene.dna)

let splice (p : Transcript.primary) =
  let parts =
    List.map (fun (off, len) -> Sequence.sub p.Transcript.rna ~pos:off ~len)
      p.Transcript.exons
  in
  let rna =
    match parts with [] -> Sequence.empty Sequence.Rna | _ -> Sequence.concat parts
  in
  Transcript.mrna ~gene_id:p.Transcript.gene_id ~code:p.Transcript.code rna

let splice_dropping (p : Transcript.primary) skip_index =
  let exons = List.filteri (fun i _ -> i <> skip_index) p.Transcript.exons in
  let parts =
    List.map (fun (off, len) -> Sequence.sub p.Transcript.rna ~pos:off ~len) exons
  in
  let rna =
    match parts with [] -> Sequence.empty Sequence.Rna | _ -> Sequence.concat parts
  in
  Transcript.mrna ~gene_id:p.Transcript.gene_id ~code:p.Transcript.code rna

let splice_uncertain ?(confidence = 0.9) (p : Transcript.primary) =
  let canonical =
    { Uncertain.value = splice p; confidence; provenance = None }
  in
  let exon_count = List.length p.Transcript.exons in
  let variants =
    if exon_count < 3 then []
    else
      (* skipping a middle exon models the commonest alternative splicing *)
      List.init (exon_count - 2) (fun i ->
          {
            Uncertain.value = splice_dropping p (i + 1);
            confidence = (1. -. confidence) /. float_of_int (exon_count - 2);
            provenance = None;
          })
  in
  Uncertain.of_alternatives (canonical :: variants)

let codon_at seq i = String.init 3 (fun k -> Sequence.get seq (i + k))

let translate (m : Transcript.mrna) =
  let code = m.Transcript.code in
  let rna = m.Transcript.rna in
  let n = Sequence.length rna in
  let rec find_start i =
    if i + 3 > n then None
    else if Genetic_code.is_start_codon code (codon_at rna i) then Some i
    else find_start (i + 1)
  in
  match find_start 0 with
  | None -> Error (Printf.sprintf "mRNA of %s has no start codon" m.Transcript.gene_id)
  | Some start ->
      let buf = Buffer.create 64 in
      let rec loop i =
        if i + 3 > n then ()
        else
          let aa = Genetic_code.translate_codon code (codon_at rna i) in
          if Amino_acid.equal aa Amino_acid.Stop then ()
          else begin
            Buffer.add_char buf (Amino_acid.to_char aa);
            loop (i + 3)
          end
      in
      loop start;
      let residues = Sequence.protein (Buffer.contents buf) in
      Protein.make ~id:(m.Transcript.gene_id ^ "_p") ~name:m.Transcript.gene_id
        residues

let translate_frame ?(code = Genetic_code.standard) ~frame seq =
  if frame < 0 || frame > 2 then invalid_arg "Ops.translate_frame: frame must be 0-2";
  (match Sequence.alphabet seq with
  | Sequence.Protein -> invalid_arg "Ops.translate_frame: protein input"
  | Sequence.Dna | Sequence.Rna -> ());
  let n = Sequence.length seq in
  let codons = (n - frame) / 3 in
  let buf = Buffer.create (max 0 codons) in
  for c = 0 to codons - 1 do
    let aa = Genetic_code.translate_codon code (codon_at seq (frame + (c * 3))) in
    Buffer.add_char buf (Amino_acid.to_char aa)
  done;
  Sequence.protein (Buffer.contents buf)

let reverse_transcribe seq =
  match Sequence.alphabet seq with
  | Sequence.Rna -> Sequence.to_dna seq
  | Sequence.Dna | Sequence.Protein ->
      invalid_arg "Ops.reverse_transcribe: input must be RNA"

let decode g = translate (splice (transcribe g))

(* ------------------------------------------------------------------ *)
(* Open reading frames                                                 *)

type strand = Forward | Reverse

type orf = { strand : strand; frame : int; start : int; length : int }

let orfs_of_strand ~code ~min_length ~strand seq =
  let n = Sequence.length seq in
  let found = ref [] in
  for frame = 0 to 2 do
    (* walk codons; an ORF opens at the first start codon after the last
       stop and closes at the next in-frame stop *)
    let open_start = ref (-1) in
    let c = ref frame in
    while !c + 3 <= n do
      let codon = codon_at seq !c in
      if !open_start < 0 then begin
        if Genetic_code.is_start_codon code codon then open_start := !c
      end
      else if Genetic_code.is_stop_codon code codon then begin
        let length = !c + 3 - !open_start in
        if length >= min_length then
          found := { strand; frame; start = !open_start; length } :: !found;
        open_start := -1
      end;
      c := !c + 3
    done
  done;
  !found

let find_orfs ?(code = Genetic_code.standard) ?(min_length = 90)
    ?both_strands seq =
  let alpha = Sequence.alphabet seq in
  (match alpha with
  | Sequence.Protein -> invalid_arg "Ops.find_orfs: protein input"
  | Sequence.Dna | Sequence.Rna -> ());
  let both =
    match both_strands with
    | Some b -> b && alpha = Sequence.Dna
    | None -> alpha = Sequence.Dna
  in
  let fwd = orfs_of_strand ~code ~min_length ~strand:Forward seq in
  let rev =
    if both then
      orfs_of_strand ~code ~min_length ~strand:Reverse (Sequence.reverse_complement seq)
    else []
  in
  List.sort
    (fun a b ->
      let c = Int.compare b.length a.length in
      if c <> 0 then c else Stdlib.compare (a.strand, a.frame, a.start) (b.strand, b.frame, b.start))
    (fwd @ rev)

let orf_sequence seq orf =
  let subject =
    match orf.strand with
    | Forward -> seq
    | Reverse -> Sequence.reverse_complement seq
  in
  Sequence.sub subject ~pos:orf.start ~len:orf.length

let orf_protein ?(code = Genetic_code.standard) seq orf =
  let nt = orf_sequence seq orf in
  let aa = translate_frame ~code ~frame:0 nt in
  (* drop the trailing stop *)
  let n = Sequence.length aa in
  if n > 0 && Sequence.get aa (n - 1) = '*' then Sequence.sub aa ~pos:0 ~len:(n - 1)
  else aa

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

let gc_content seq =
  let n = Sequence.length seq in
  if n = 0 then 0.
  else float_of_int (Sequence.gc_count seq) /. float_of_int n

let melting_temperature seq =
  let n = Sequence.length seq in
  if n = 0 then 0.
  else begin
    let gc = Sequence.gc_count seq in
    let at = n - gc in
    if n <= 13 then float_of_int ((2 * at) + (4 * gc))
    else
      64.9 +. (41. *. ((float_of_int gc -. 16.4) /. float_of_int n))
  end

let codon_usage seq =
  (match Sequence.alphabet seq with
  | Sequence.Protein -> invalid_arg "Ops.codon_usage: protein input"
  | Sequence.Dna | Sequence.Rna -> ());
  let n = Sequence.length seq in
  let counts = Hashtbl.create 64 in
  let c = ref 0 in
  while !c + 3 <= n do
    let codon =
      String.map (function 'U' -> 'T' | ch -> ch) (codon_at seq !c)
    in
    Hashtbl.replace counts codon (1 + Option.value (Hashtbl.find_opt counts codon) ~default:0);
    c := !c + 3
  done;
  Hashtbl.fold (fun codon k acc -> (codon, k) :: acc) counts []
  |> List.sort (fun (c1, k1) (c2, k2) ->
         let c = Int.compare k2 k1 in
         if c <> 0 then c else String.compare c1 c2)

(* ------------------------------------------------------------------ *)
(* Restriction analysis                                                *)

type enzyme = { name : string; site : string; cut_offset : int }

let common_enzymes =
  [
    { name = "EcoRI"; site = "GAATTC"; cut_offset = 1 };
    { name = "BamHI"; site = "GGATCC"; cut_offset = 1 };
    { name = "HindIII"; site = "AAGCTT"; cut_offset = 1 };
    { name = "NotI"; site = "GCGGCCGC"; cut_offset = 2 };
    { name = "EcoRV"; site = "GATATC"; cut_offset = 3 };
    { name = "SmaI"; site = "CCCGGG"; cut_offset = 3 };
    { name = "PstI"; site = "CTGCAG"; cut_offset = 5 };
    { name = "KpnI"; site = "GGTACC"; cut_offset = 5 };
  ]

let enzyme_by_name name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    common_enzymes

let restriction_sites enzyme seq = Sequence.find_all ~pattern:enzyme.site seq

let digest enzyme seq =
  let sites = restriction_sites enzyme seq in
  let cuts = List.map (fun s -> s + enzyme.cut_offset) sites in
  let n = Sequence.length seq in
  let rec fragments start = function
    | [] -> if start < n then [ Sequence.sub seq ~pos:start ~len:(n - start) ] else []
    | cut :: rest ->
        if cut <= start || cut >= n then fragments start rest
        else Sequence.sub seq ~pos:start ~len:(cut - start) :: fragments cut rest
  in
  match fragments 0 cuts with [] -> [ seq ] | frags -> frags

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let matrix_for a b =
  let open Genalg_align in
  match Sequence.alphabet a, Sequence.alphabet b with
  | Sequence.Protein, Sequence.Protein -> Scoring.blosum62
  | (Sequence.Dna | Sequence.Rna), (Sequence.Dna | Sequence.Rna) -> Scoring.dna_default
  | _ ->
      invalid_arg "Ops: cannot compare protein with nucleotide sequences"

let self_score matrix s =
  Sequence.fold_left
    (fun acc c -> acc + Genalg_align.Scoring.score matrix c c)
    0 s

let resembles a b =
  let matrix = matrix_for a b in
  if Sequence.length a = 0 || Sequence.length b = 0 then 0.
  else begin
    let sa = Sequence.to_string a and sb = Sequence.to_string b in
    let score =
      Genalg_align.Pairwise.score_only ~mode:Genalg_align.Pairwise.Local ~matrix
        ~query:sa ~subject:sb ()
    in
    let norm = min (self_score matrix a) (self_score matrix b) in
    if norm <= 0 then 0.
    else begin
      let r = float_of_int score /. float_of_int norm in
      if r < 0. then 0. else if r > 1. then 1. else r
    end
  end

let identity a b =
  let matrix = matrix_for a b in
  if Sequence.length a = 0 && Sequence.length b = 0 then 1.
  else begin
    let aln =
      Genalg_align.Pairwise.align ~mode:Genalg_align.Pairwise.Global ~matrix
        ~query:(Sequence.to_string a) ~subject:(Sequence.to_string b) ()
    in
    Genalg_align.Pairwise.identity aln
  end

let edit_distance a b =
  Genalg_align.Distance.levenshtein (Sequence.to_string a) (Sequence.to_string b)

(* ------------------------------------------------------------------ *)
(* Further analysis                                                    *)

(* IUPAC letter for a non-empty set of concrete DNA bases *)
let iupac_of_bases bases =
  let bit = function
    | Nucleotide.A -> 1
    | Nucleotide.C -> 2
    | Nucleotide.G -> 4
    | Nucleotide.T -> 8
    | _ -> 0
  in
  let mask = List.fold_left (fun acc b -> acc lor bit b) 0 bases in
  [| '?'; 'A'; 'C'; 'M'; 'G'; 'R'; 'S'; 'V'; 'T'; 'W'; 'Y'; 'H'; 'K'; 'D'; 'B'; 'N' |].(mask)

let back_translate ?(code = Genetic_code.standard) protein_seq =
  (match Sequence.alphabet protein_seq with
  | Sequence.Protein -> ()
  | Sequence.Dna | Sequence.Rna ->
      invalid_arg "Ops.back_translate: input must be a protein sequence");
  let buf = Buffer.create (3 * Sequence.length protein_seq) in
  Sequence.iter
    (fun c ->
      let aa = Amino_acid.of_char_exn c in
      let codons = Genetic_code.back_translate code aa in
      if codons = [] then
        invalid_arg
          (Printf.sprintf "Ops.back_translate: residue %c has no codons" c);
      for pos = 0 to 2 do
        let bases =
          List.sort_uniq Stdlib.compare
            (List.map (fun codon -> Nucleotide.of_char_exn codon.[pos]) codons)
        in
        Buffer.add_char buf (iupac_of_bases bases)
      done)
    protein_seq;
  Sequence.dna (Buffer.contents buf)

let longest_repeat seq =
  let sa = Genalg_seqindex.Suffix_array.build (Sequence.to_string seq) in
  Genalg_seqindex.Suffix_array.longest_repeat sa
