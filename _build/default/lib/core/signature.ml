type operator = {
  name : string;
  arg_sorts : Sort.t list;
  result_sort : Sort.t;
  doc : string;
  impl : Value.t list -> (Value.t, string) result;
}

type t = { table : (string, operator list ref) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let key name = String.lowercase_ascii name

let same_rank a b =
  List.length a.arg_sorts = List.length b.arg_sorts
  && List.for_all2 Sort.equal a.arg_sorts b.arg_sorts

let register t op =
  let k = key op.name in
  match Hashtbl.find_opt t.table k with
  | None ->
      Hashtbl.add t.table k (ref [ op ]);
      Ok ()
  | Some cell ->
      if List.exists (same_rank op) !cell then
        Error
          (Printf.sprintf "operator %s(%s) already registered" op.name
             (String.concat ", " (List.map Sort.to_string op.arg_sorts)))
      else begin
        cell := op :: !cell;
        Ok ()
      end

let register_exn t op =
  match register t op with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Signature.register_exn: " ^ msg)

let arg_matches ~param ~arg =
  Sort.equal param arg
  || match param, arg with Sort.Float, Sort.Int -> true | _ -> false

let rank_matches op args =
  List.length op.arg_sorts = List.length args
  && List.for_all2 (fun param arg -> arg_matches ~param ~arg) op.arg_sorts args

let resolve t name args =
  match Hashtbl.find_opt t.table (key name) with
  | None -> None
  | Some cell ->
      (* prefer an exact match over a widened one *)
      let exact =
        List.find_opt
          (fun op ->
            List.length op.arg_sorts = List.length args
            && List.for_all2 Sort.equal op.arg_sorts args)
          !cell
      in
      (match exact with
      | Some _ as r -> r
      | None -> List.find_opt (fun op -> rank_matches op args) !cell)

let find_by_name t name =
  match Hashtbl.find_opt t.table (key name) with
  | None -> []
  | Some cell -> !cell

let mem t name = Hashtbl.mem t.table (key name)

let operators t =
  Hashtbl.fold (fun _ cell acc -> !cell @ acc) t.table []
  |> List.sort (fun a b ->
         let c = String.compare (key a.name) (key b.name) in
         if c <> 0 then c else Stdlib.compare a.arg_sorts b.arg_sorts)

let cardinal t = List.length (operators t)

let widen_arg ~param v =
  match param, v with
  | Sort.Float, Value.VInt i -> Value.VFloat (float_of_int i)
  | _ -> v

let apply t name values =
  let args = List.map Value.sort_of values in
  match resolve t name args with
  | None ->
      Error
        (Printf.sprintf "no operator %s(%s)" name
           (String.concat ", " (List.map Sort.to_string args)))
  | Some op -> (
      let values = List.map2 (fun param v -> widen_arg ~param v) op.arg_sorts values in
      match op.impl values with
      | Error _ as e -> e
      | Ok result ->
          let actual = Value.sort_of result in
          if Sort.equal actual op.result_sort then Ok result
          else
            Error
              (Printf.sprintf
                 "operator %s returned sort %s, but its signature declares %s"
                 op.name (Sort.to_string actual)
                 (Sort.to_string op.result_sort)))

let rank_to_string op =
  Printf.sprintf "%s: %s -> %s" op.name
    (match op.arg_sorts with
    | [] -> "()"
    | sorts -> String.concat " x " (List.map Sort.to_string sorts))
    (Sort.to_string op.result_sort)

let merge ~into src =
  List.iter (fun op -> ignore (register into op)) (operators src)
