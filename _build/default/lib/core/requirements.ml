type biologist_problem = B1 | B2 | B3 | B4 | B5 | B6 | B7 | B8 | B9 | B10

type requirement =
  | C1 | C2 | C3 | C4 | C5 | C6 | C7 | C8 | C9 | C10 | C11 | C12 | C13 | C14 | C15

let all_problems = [ B1; B2; B3; B4; B5; B6; B7; B8; B9; B10 ]

let all_requirements =
  [ C1; C2; C3; C4; C5; C6; C7; C8; C9; C10; C11; C12; C13; C14; C15 ]

let problem_label = function
  | B1 -> "B1" | B2 -> "B2" | B3 -> "B3" | B4 -> "B4" | B5 -> "B5"
  | B6 -> "B6" | B7 -> "B7" | B8 -> "B8" | B9 -> "B9" | B10 -> "B10"

let requirement_label = function
  | C1 -> "C1" | C2 -> "C2" | C3 -> "C3" | C4 -> "C4" | C5 -> "C5"
  | C6 -> "C6" | C7 -> "C7" | C8 -> "C8" | C9 -> "C9" | C10 -> "C10"
  | C11 -> "C11" | C12 -> "C12" | C13 -> "C13" | C14 -> "C14" | C15 -> "C15"

let problem_description = function
  | B1 -> "Proliferation of specialized databases creates missed opportunities"
  | B2 -> "Two or more databases may hold additive or conflicting information"
  | B3 -> "Little or no agreement on terminology and concepts among groups"
  | B4 -> "A familiar data resource will disappear or morph to a different site"
  | B5 -> "Query results are unmanageable unless organized into a project database"
  | B6 -> "Copied data records become obsolete unless updated"
  | B7 -> "Each data site is a unique interface forcing custom access methods"
  | B8 -> "Database schema and data types are unknown, making custom SQL impossible"
  | B9 -> "Biologists prefer biological terms and operations over SQL and schemas"
  | B10 -> "Data in most genomics repositories are noisy (30-60% of GenBank erroneous)"

let requirement_description = function
  | C1 -> "Multitude and heterogeneity of available genomic repositories"
  | C2 -> "Missing standards for genomic data representation"
  | C3 -> "Multitude of user interfaces"
  | C4 -> "Quality of user interfaces"
  | C5 -> "Quality of query languages"
  | C6 -> "Limited functionality of genomic repositories"
  | C7 -> "Format of query results"
  | C8 -> "Incorrectness due to inconsistent and incompatible data"
  | C9 -> "Uncertainty of data"
  | C10 -> "Combination of data from different genomic repositories"
  | C11 -> "Extraction of hidden and creation of new knowledge"
  | C12 -> "Low-level treatment of data"
  | C13 -> "Integration of self-generated data and extensibility"
  | C14 -> "Integration of new specialty evaluation functions"
  | C15 -> "Loss of existing repositories"

let cross_references = function
  | C1 -> [ B1; B2; B3 ]
  | C2 -> [ B1; B2; B3; B7 ]
  | C3 -> [ B7 ]
  | C4 -> [ B5; B7; B8; B9 ]
  | C5 -> [ B5; B8; B9 ]
  | C6 -> [ B2; B3; B8; B9 ]
  | C7 -> [ B5; B6 ]
  | C8 -> [ B1; B2; B3; B6 ]
  | C9 -> [ B2; B6; B10 ]
  | C10 -> [ B2; B8; B9 ]
  | C11 -> [ B1; B2; B8; B9 ]
  | C12 -> [ B1; B2; B5; B8; B9 ]
  | C13 -> [ B5; B6 ]
  | C14 -> [ B5; B8; B9 ]
  | C15 -> [ B4 ]
