type t =
  | Const of Value.t
  | Var of string * Sort.t
  | App of string * t list

let const v = Const v
let var name sort = Var (name, sort)
let app name args = App (name, args)

let rec sort_check sg ~env = function
  | Const v -> Ok (Value.sort_of v)
  | Var (name, sort) -> (
      match List.assoc_opt name env with
      | None -> Ok sort
      | Some bound ->
          if Sort.equal bound sort then Ok sort
          else
            Error
              (Printf.sprintf "variable %s declared %s but bound at sort %s" name
                 (Sort.to_string sort) (Sort.to_string bound)))
  | App (name, args) ->
      let rec check_args acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest -> (
            match sort_check sg ~env a with
            | Ok s -> check_args (s :: acc) rest
            | Error _ as e -> e)
      in
      (match check_args [] args with
      | Error _ as e -> e
      | Ok arg_sorts -> (
          match Signature.resolve sg name arg_sorts with
          | Some op -> Ok op.Signature.result_sort
          | None ->
              Error
                (Printf.sprintf "no operator %s(%s)" name
                   (String.concat ", " (List.map Sort.to_string arg_sorts)))))

let sort_check_closed sg t =
  let rec no_vars = function
    | Const _ -> true
    | Var _ -> false
    | App (_, args) -> List.for_all no_vars args
  in
  if no_vars t then sort_check sg ~env:[] t
  else Error "term contains free variables"

let rec eval sg ~env = function
  | Const v -> Ok v
  | Var (name, _) -> (
      match env name with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "unbound variable %s" name))
  | App (name, args) ->
      let rec eval_args acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest -> (
            match eval sg ~env a with
            | Ok v -> eval_args (v :: acc) rest
            | Error _ as e -> e)
      in
      (match eval_args [] args with
      | Error _ as e -> e
      | Ok values -> Signature.apply sg name values)

let eval_closed sg t = eval sg ~env:(fun _ -> None) t

let vars t =
  let rec collect acc = function
    | Const _ -> acc
    | Var (name, sort) ->
        if List.mem_assoc name acc then acc else (name, sort) :: acc
    | App (_, args) -> List.fold_left collect acc args
  in
  List.rev (collect [] t)

let rec to_string = function
  | Const v -> Value.to_display_string v
  | Var (name, _) -> name
  | App (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map to_string args))

let pp ppf t = Format.pp_print_string ppf (to_string t)
