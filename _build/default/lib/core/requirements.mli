(** The paper's requirements catalogue.

    Section 2 derives ten biologist-facing problems (B1–B10) and fifteen
    computer-science requirements (C1–C15); Table 1 scores six integration
    systems against C1–C15. This module encodes both lists so the
    capability-matrix reproduction (bench T1) is generated from data
    rather than prose. *)

type biologist_problem = B1 | B2 | B3 | B4 | B5 | B6 | B7 | B8 | B9 | B10

type requirement =
  | C1 | C2 | C3 | C4 | C5 | C6 | C7 | C8 | C9 | C10 | C11 | C12 | C13 | C14 | C15

val all_problems : biologist_problem list
val all_requirements : requirement list

val problem_label : biologist_problem -> string
val requirement_label : requirement -> string

val problem_description : biologist_problem -> string
val requirement_description : requirement -> string

val cross_references : requirement -> biologist_problem list
(** The B-problems each C-requirement addresses, as listed in the paper. *)
