(** The value universe of the Genomics Algebra.

    Each constructor carries one sort's values; {!sort_of} recovers the
    sort, which is what the evaluator and the DBMS adapter use to
    dynamically type-check operator applications. *)

open Genalg_gdt

type t =
  | VBool of bool
  | VInt of int
  | VFloat of float
  | VString of string
  | VNucleotide of Nucleotide.t
  | VAmino_acid of Amino_acid.t
  | VDna of Sequence.t            (** invariant: alphabet [Dna] *)
  | VRna of Sequence.t            (** invariant: alphabet [Rna] *)
  | VProtein_seq of Sequence.t    (** invariant: alphabet [Protein] *)
  | VGene of Gene.t
  | VPrimary of Transcript.primary
  | VMrna of Transcript.mrna
  | VProtein of Protein.t
  | VChromosome of Chromosome.t
  | VGenome of Genome.t
  | VList of Sort.t * t list      (** element sort, then elements *)
  | VUncertain of Sort.t * t Uncertain.t

val sort_of : t -> Sort.t

val dna : string -> t
(** [dna "ACGT"] — convenience constructor; raises on invalid letters. *)

val rna : string -> t
val protein_seq : string -> t

val vlist : Sort.t -> t list -> t
(** Raises [Invalid_argument] when an element's sort differs. *)

val uncertain : t Uncertain.t -> t
(** Wraps; all alternatives must share a sort. *)

val equal : t -> t -> bool
val to_display_string : t -> string
(** Human-readable rendering used by the CLI and query results. *)

val pp : Format.formatter -> t -> unit

val to_bool : t -> (bool, string) result
val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
val to_string_value : t -> (string, string) result
val to_sequence : t -> (Sequence.t, string) result
(** Accepts [VDna], [VRna] and [VProtein_seq]. *)
