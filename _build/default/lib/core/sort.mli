(** Sorts of the Genomics Algebra.

    A sort names a carrier set (paper section 4.2): the genomic data types
    ([gene], [mrna], [protein], …) plus the base sorts needed to express
    operator signatures, and two sort constructors — homogeneous lists and
    uncertainty-carrying values. *)

type t =
  | Bool
  | Int
  | Float
  | String
  | Nucleotide
  | Amino_acid
  | Dna
  | Rna
  | Protein_seq       (** bare amino-acid sequence *)
  | Gene
  | Primary_transcript
  | Mrna
  | Protein           (** named protein GDT *)
  | Chromosome
  | Genome
  | List of t
  | Uncertain of t

val to_string : t -> string
(** Lower-case name as it appears in signatures, e.g.
    ["primarytranscript"], ["list(dna)"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val all_base : t list
(** Every non-constructed sort. *)
