(** The kernel Genomics Algebra operations, as plain OCaml functions.

    "From a software point of view, the Genomics Algebra is an extensible,
    self-contained software package … principally independent of a database
    system and can be used as a software library by a stand-alone
    application program" (paper section 4.2). This module is that kernel
    library; {!Builtin} wraps the same functions as registered signature
    operators for terms, SQL and the biological query language.

    Position conventions: all offsets are 0-based; ORF coordinates refer to
    the strand the ORF was found on (for [`Reverse] the offsets index the
    reverse complement of the input). *)

open Genalg_gdt

(** {1 Central dogma} *)

val transcribe : Gene.t -> Transcript.primary
(** RNA copy of the gene's sense strand; exon structure carried over. *)

val splice : Transcript.primary -> Transcript.mrna
(** Excise introns: concatenate exon spans in order. *)

val splice_uncertain :
  ?confidence:float -> Transcript.primary -> Transcript.mrna Uncertain.t
(** The paper notes that splicing's operational semantics is unknown and
    results must carry uncertainty (section 4.3). The canonical splicing is
    returned with the given confidence (default 0.9) and every
    single-exon-skipping variant as a lower-confidence alternative. *)

val translate : Transcript.mrna -> (Protein.t, string) result
(** Scan for the first start codon, then translate until a stop codon or
    the transcript's end. [Error] when no start codon exists. *)

val translate_frame :
  ?code:Genetic_code.t -> frame:int -> Sequence.t -> Sequence.t
(** Raw frame translation (frame 0–2) of a DNA or RNA sequence over all
    complete codons, internal stops rendered as ['*']. Raises
    [Invalid_argument] on proteins or frames outside 0–2. *)

val reverse_transcribe : Sequence.t -> Sequence.t
(** mRNA → cDNA: the RNA sequence with U→T. Raises on non-RNA. *)

val decode : Gene.t -> (Protein.t, string) result
(** [translate (splice (transcribe g))] — the paper's running example. *)

(** {1 Open reading frames} *)

type strand = Forward | Reverse

type orf = {
  strand : strand;
  frame : int;     (** 0–2 within the strand *)
  start : int;     (** offset of the start codon on that strand *)
  length : int;    (** nucleotides, start codon through stop codon *)
}

val find_orfs :
  ?code:Genetic_code.t -> ?min_length:int -> ?both_strands:bool ->
  Sequence.t -> orf list
(** ORFs (start codon … in-frame stop codon, inclusive) of at least
    [min_length] nucleotides (default 90), longest first. DNA or RNA
    input; [both_strands] defaults to true for DNA and is ignored
    (forward only) for RNA. Nested ORFs sharing a stop are reported only
    for their leftmost start. *)

val orf_sequence : Sequence.t -> orf -> Sequence.t
(** Extract an ORF's nucleotides from the sequence it was found in. *)

val orf_protein : ?code:Genetic_code.t -> Sequence.t -> orf -> Sequence.t
(** The ORF's translation, stop codon dropped. *)

(** {1 Sequence statistics} *)

val gc_content : Sequence.t -> float
(** Fraction of G/C/S bases, in [0, 1]; 0 for the empty sequence. Raises
    on proteins. *)

val melting_temperature : Sequence.t -> float
(** Primer Tm in °C: Wallace rule [2(A+T) + 4(G+C)] for <= 13 nt,
    otherwise [64.9 + 41(GC - 16.4/N)]. Raises on proteins. *)

val codon_usage : Sequence.t -> (string * int) list
(** Counts of each codon over complete frame-0 codons of a DNA/RNA
    sequence, as DNA triplets, descending by count then codon. *)

(** {1 Restriction analysis} *)

type enzyme = {
  name : string;
  site : string;       (** recognition site, 5'→3' DNA letters *)
  cut_offset : int;    (** cut position within the site, 0-based *)
}

val common_enzymes : enzyme list
(** EcoRI, BamHI, HindIII, NotI, EcoRV, SmaI, PstI, KpnI. *)

val enzyme_by_name : string -> enzyme option

val restriction_sites : enzyme -> Sequence.t -> int list
(** 0-based offsets of recognition-site occurrences, ascending. *)

val digest : enzyme -> Sequence.t -> Sequence.t list
(** Fragments after cutting at every site (linear molecule). A sequence
    with no sites yields itself. *)

(** {1 Comparison} *)

val resembles : Sequence.t -> Sequence.t -> float
(** Similarity in [0, 1]: best local alignment score normalised by the
    smaller self-alignment score. 1 when one sequence contains the other
    exactly; 0 for no positive-scoring local alignment. Protein pairs use
    BLOSUM62, nucleotide pairs the default DNA matrix. Raises when
    alphabet classes differ (protein vs nucleotide). *)

val identity : Sequence.t -> Sequence.t -> float
(** Global-alignment identity fraction in [0, 1]. *)

val edit_distance : Sequence.t -> Sequence.t -> int
(** Unit-cost Levenshtein distance on letters. *)

(** {1 Further analysis} *)

val back_translate : ?code:Genetic_code.t -> Sequence.t -> Sequence.t
(** Degenerate reverse translation of a protein sequence: each residue
    becomes the IUPAC consensus of its codons (e.g. Met gives [ATG],
    Leu gives [YTN]). Stops become [TRR] under the standard code.
    Raises [Invalid_argument] on nucleotide input or residues without
    codons (ambiguity codes [B]/[Z]/[X]). The original protein always
    matches a frame-0 translation of every concretization. *)

val longest_repeat : Sequence.t -> (int * int * int) option
(** [(pos1, pos2, len)] of a longest exactly-repeated substring (two
    distinct occurrences), suffix-array backed; [None] when no letter
    repeats. *)
