open Genalg_gdt

let dna_string rng ?(gc = 0.5) len =
  String.init len (fun _ ->
      if Rng.bool rng gc then (if Rng.bool rng 0.5 then 'G' else 'C')
      else if Rng.bool rng 0.5 then 'A'
      else 'T')

let dna rng ?gc len = Sequence.dna (dna_string rng ?gc len)

let rna rng ?gc len =
  Sequence.rna (String.map (function 'T' -> 'U' | c -> c) (dna_string rng ?gc len))

let protein_letters = "ACDEFGHIKLMNPQRSTVWY"

let protein rng len =
  Sequence.protein
    (String.init len (fun _ -> protein_letters.[Rng.int rng (String.length protein_letters)]))

let plant_motif rng ~motif seq =
  let n = Sequence.length seq and m = String.length motif in
  if m > n then invalid_arg "Seqgen.plant_motif: motif longer than sequence";
  let offset = if n = m then 0 else Rng.int rng (n - m + 1) in
  let text = Bytes.of_string (Sequence.to_string seq) in
  Bytes.blit_string (String.uppercase_ascii motif) 0 text offset m;
  (Sequence.of_string_exn (Sequence.alphabet seq) (Bytes.to_string text), offset)

let alphabet_letters = function
  | Sequence.Dna -> "ACGT"
  | Sequence.Rna -> "ACGU"
  | Sequence.Protein -> protein_letters

let mutate rng ~rate seq =
  let letters = alphabet_letters (Sequence.alphabet seq) in
  let change c =
    let rec pick () =
      let c' = letters.[Rng.int rng (String.length letters)] in
      if c' = c then pick () else c'
    in
    pick ()
  in
  let text =
    String.map
      (fun c -> if Rng.bool rng rate then change c else c)
      (Sequence.to_string seq)
  in
  Sequence.of_string_exn (Sequence.alphabet seq) text

let indel rng ~rate seq =
  let letters = alphabet_letters (Sequence.alphabet seq) in
  let buf = Buffer.create (Sequence.length seq) in
  Sequence.iter
    (fun c ->
      if Rng.bool rng rate then begin
        if Rng.bool rng 0.5 then begin
          (* insertion: keep the base and add a random one *)
          Buffer.add_char buf c;
          Buffer.add_char buf letters.[Rng.int rng (String.length letters)]
        end
        (* deletion: drop the base *)
      end
      else Buffer.add_char buf c)
    seq;
  Sequence.of_string_exn (Sequence.alphabet seq) (Buffer.contents buf)

let homolog rng ~identity seq =
  let rate = Float.max 0. (1. -. identity) in
  indel rng ~rate:(rate /. 10.) (mutate rng ~rate seq)
