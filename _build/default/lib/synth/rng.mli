(** Deterministic splitmix64 random number generator.

    All synthetic data in this reproduction flows from explicit seeds so
    every experiment is exactly repeatable. *)

type t

val make : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val copy : t -> t

val next : t -> int64
(** Raw 64-bit step. *)

val int : t -> int -> int
(** [int t bound] in [0, bound); [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** True with the given probability. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** Element drawn by positive weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample : t -> int -> int -> int list
(** [sample t k n]: [k] distinct indices out of [0, n), ascending.
    Raises [Invalid_argument] when [k > n]. *)
