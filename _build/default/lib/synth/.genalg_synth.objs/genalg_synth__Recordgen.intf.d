lib/synth/recordgen.mli: Entry Genalg_formats Rng
