lib/synth/genegen.mli: Chromosome Genalg_gdt Gene Genetic_code Genome Rng
