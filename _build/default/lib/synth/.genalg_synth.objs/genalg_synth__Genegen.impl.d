lib/synth/genegen.ml: Array Buffer Chromosome Feature Genalg_gdt Gene Genetic_code Genome List Location Printf Rng Seqgen Sequence String
