lib/synth/rng.mli:
