lib/synth/seqgen.ml: Buffer Bytes Float Genalg_gdt Rng Sequence String
