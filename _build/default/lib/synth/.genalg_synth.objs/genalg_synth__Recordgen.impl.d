lib/synth/recordgen.ml: Array Bytes Entry Feature Genalg_formats Genalg_gdt Genegen Hashtbl List Location Option Printf Rng Seqgen Sequence
