lib/synth/rng.ml: Array Int Int64 List
