lib/synth/seqgen.mli: Genalg_gdt Rng Sequence
