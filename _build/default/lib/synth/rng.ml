type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992. (* 2^53 *)

let bool t p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t arr =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
  if total <= 0. then invalid_arg "Rng.choose_weighted: weights must be positive";
  let target = float t *. total in
  let rec pick i acc =
    if i = Array.length arr - 1 then fst arr.(i)
    else
      let acc = acc +. snd arr.(i) in
      if target < acc then fst arr.(i) else pick (i + 1) acc
  in
  pick 0 0.

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k n =
  if k > n then invalid_arg "Rng.sample: k > n";
  (* reservoir over [0, n) then sort *)
  let reservoir = Array.make k 0 in
  for i = 0 to n - 1 do
    if i < k then reservoir.(i) <- i
    else begin
      let j = int t (i + 1) in
      if j < k then reservoir.(j) <- i
    end
  done;
  List.sort Int.compare (Array.to_list reservoir)
