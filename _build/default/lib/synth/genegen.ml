open Genalg_gdt

(* Codons that are neither stops nor rare edge cases, as DNA triplets. *)
let sense_codons code =
  let all =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            List.map
              (fun c -> Printf.sprintf "%c%c%c" a b c)
              [ 'A'; 'C'; 'G'; 'T' ])
          [ 'A'; 'C'; 'G'; 'T' ])
      [ 'A'; 'C'; 'G'; 'T' ]
  in
  Array.of_list (List.filter (fun codon -> not (Genetic_code.is_stop_codon code codon)) all)

let coding_sequence rng ~code ~codons =
  let sense = sense_codons code in
  let buf = Buffer.create ((codons + 2) * 3) in
  Buffer.add_string buf "ATG";
  for _ = 1 to codons do
    Buffer.add_string buf (Rng.choose rng sense)
  done;
  let stops = Array.of_list (Genetic_code.stop_codons code) in
  Buffer.add_string buf (Rng.choose rng stops);
  Buffer.contents buf

let intron rng len =
  (* canonical GT...AG splice sites around a random core *)
  let core = max 0 (len - 4) in
  "GT" ^ Seqgen.dna_string rng core ^ "AG"

let jitter rng base =
  (* +- 25% around the base *)
  let delta = base / 4 in
  if delta = 0 then base else base - delta + Rng.int rng (2 * delta)

let gene rng ?(exon_count = 3) ?(exon_length = 120) ?(intron_length = 80)
    ?(code = Genetic_code.standard) ~id () =
  if exon_count < 1 then invalid_arg "Genegen.gene: exon_count must be >= 1";
  let coding_nt = max 30 (jitter rng (exon_count * exon_length)) in
  let codons = coding_nt / 3 in
  let cds = coding_sequence rng ~code ~codons in
  let n = String.length cds in
  (* cut the CDS into exon_count ordered pieces *)
  let cuts =
    if exon_count = 1 then []
    else Rng.sample rng (exon_count - 1) (n - 2) |> List.map (fun c -> c + 1)
  in
  let pieces =
    let rec split start = function
      | [] -> [ String.sub cds start (n - start) ]
      | c :: rest -> String.sub cds start (c - start) :: split c rest
    in
    split 0 cuts
  in
  let buf = Buffer.create (2 * n) in
  let exons = ref [] in
  List.iteri
    (fun i piece ->
      if i > 0 then begin
        let ilen = max 10 (jitter rng intron_length) in
        Buffer.add_string buf (intron rng ilen)
      end;
      let off = Buffer.length buf in
      Buffer.add_string buf piece;
      exons := (off, String.length piece) :: !exons)
    pieces;
  let dna = Sequence.dna (Buffer.contents buf) in
  Gene.make_exn ~exons:(List.rev !exons) ~code ~id dna

let chromosome rng ?(gene_count = 10) ?(spacer_length = 300) ~name () =
  let buf = Buffer.create 16384 in
  let features = ref [] in
  let genes = ref [] in
  for i = 1 to gene_count do
    Buffer.add_string buf (Seqgen.dna_string rng (max 10 (jitter rng spacer_length)));
    let g = gene rng ~id:(Printf.sprintf "%s_g%02d" name i) () in
    let start = Buffer.length buf + 1 (* 1-based *) in
    Buffer.add_string buf (Sequence.to_string g.Gene.dna);
    let stop = Buffer.length buf in
    features :=
      Feature.make
        ~qualifiers:[ ("gene", g.Gene.id) ]
        Feature.Gene
        (Location.range start stop)
      :: Feature.make
           ~qualifiers:[ ("gene", g.Gene.id) ]
           Feature.Cds
           (Location.join
              (List.map
                 (fun (off, len) ->
                   Location.range (start + off) (start + off + len - 1))
                 g.Gene.exons))
      :: !features;
    genes := g :: !genes
  done;
  Buffer.add_string buf (Seqgen.dna_string rng (max 10 (jitter rng spacer_length)));
  let chrom =
    Chromosome.make_exn ~features:(List.rev !features) ~name
      (Sequence.dna (Buffer.contents buf))
  in
  (chrom, List.rev !genes)

let genome rng ?(chromosome_count = 2) ?(genes_per_chromosome = 8) ~organism () =
  let chroms =
    List.init chromosome_count (fun i ->
        fst
          (chromosome rng ~gene_count:genes_per_chromosome
             ~name:(Printf.sprintf "chr%d" (i + 1))
             ()))
  in
  Genome.make_exn ~taxonomy:[ "Synthetica"; organism ] ~organism chroms
