open Genalg_gdt
open Genalg_formats

let organisms =
  [|
    "Synthetica primus"; "Synthetica secundus"; "Modelorganism demo";
    "Exemplaria vulgaris"; "Testcasia minor";
  |]

let nouns = [| "kinase"; "transporter"; "polymerase"; "receptor"; "hydrolase" |]
let adjectives = [| "putative"; "hypothetical"; "conserved"; "predicted"; "novel" |]

let definition rng =
  Printf.sprintf "%s %s gene" (Rng.choose rng adjectives) (Rng.choose rng nouns)

let feature rng ~seq_len =
  let lo = 1 + Rng.int rng (max 1 (seq_len / 2)) in
  let len = 30 + Rng.int rng (max 1 (seq_len / 3)) in
  let hi = min seq_len (lo + len) in
  let kind = Rng.choose rng [| Feature.Gene; Feature.Cds; Feature.Exon; Feature.Mrna |] in
  let loc =
    let base = Location.range lo hi in
    if Rng.bool rng 0.25 then Location.complement base else base
  in
  Feature.make ~qualifiers:[ ("gene", Printf.sprintf "g%04d" (Rng.int rng 10000)) ] kind loc

let entry rng ?(seq_length = 1000) ?(feature_count = 3) ~accession () =
  let seq_len = max 50 (seq_length - (seq_length / 8) + Rng.int rng (max 1 (seq_length / 4))) in
  let sequence = Seqgen.dna rng seq_len in
  (* embed one real (decodable) gene when there is room, the way real
     repository entries carry genuine coding regions among noisy
     annotations *)
  let sequence, gene_features =
    if seq_len < 400 then (sequence, [])
    else begin
      let gene =
        Genegen.gene rng ~exon_count:2 ~exon_length:60 ~intron_length:40
          ~id:(accession ^ "_cds") ()
      in
      let glen = Genalg_gdt.Gene.length gene in
      if glen + 2 >= seq_len then (sequence, [])
      else begin
        let offset = 1 + Rng.int rng (seq_len - glen - 1) in
        let text = Bytes.of_string (Sequence.to_string sequence) in
        Bytes.blit_string
          (Sequence.to_string gene.Genalg_gdt.Gene.dna)
          0 text offset glen;
        let cds_location =
          Location.join
            (List.map
               (fun (off, len) ->
                 Location.range (offset + off + 1) (offset + off + len))
               gene.Genalg_gdt.Gene.exons)
        in
        ( Sequence.dna (Bytes.to_string text),
          [
            Feature.make
              ~qualifiers:[ ("gene", accession ^ "_cds") ]
              Feature.Cds cds_location;
          ] )
      end
    end
  in
  let features =
    gene_features
    @ (List.init feature_count (fun _ -> feature rng ~seq_len)
      |> List.filter (fun (f : Feature.t) -> f.Feature.kind <> Feature.Cds))
    |> List.sort (fun (a : Feature.t) b ->
           compare (Location.span a.Feature.location) (Location.span b.Feature.location))
  in
  Entry.make
    ~definition:(definition rng)
    ~organism:(Rng.choose rng organisms)
    ~features
    ~keywords:(if Rng.bool rng 0.5 then [ Rng.choose rng nouns ] else [])
    ~accession sequence

let repository rng ?(size = 100) ?seq_length ?(prefix = "SYN") () =
  List.init size (fun i ->
      entry rng ?seq_length ~accession:(Printf.sprintf "%s%06d" prefix (i + 1)) ())

let noisy_copy rng ?(error_rate = 0.02) ?rename (e : Entry.t) =
  let sequence = Seqgen.mutate rng ~rate:error_rate e.Entry.sequence in
  let definition =
    if Rng.bool rng 0.3 then
      (* reworded: prepend a different adjective *)
      Printf.sprintf "%s %s" (Rng.choose rng adjectives) e.Entry.definition
    else e.Entry.definition
  in
  let features =
    List.filter (fun _ -> not (Rng.bool rng 0.15)) e.Entry.features
  in
  Entry.make ~version:1 ~definition ~organism:e.Entry.organism ~features
    ~keywords:e.Entry.keywords
    ~accession:(Option.value rename ~default:e.Entry.accession)
    sequence

let overlapping_repositories rng ?(size = 100) ?(overlap = 0.5)
    ?(noise_fraction = 0.45) ?(error_rate = 0.02) () =
  let repo_a = repository rng ~size ~prefix:"AAA" () in
  let shared_count = int_of_float (float_of_int size *. overlap) in
  let shared = List.filteri (fun i _ -> i < shared_count) repo_a in
  let pairs = ref [] in
  let copies =
    List.mapi
      (fun i (e : Entry.t) ->
        let rename = Printf.sprintf "BBB%06d" (i + 1) in
        pairs := (e.Entry.accession, rename) :: !pairs;
        if Rng.bool rng noise_fraction then noisy_copy rng ~error_rate ~rename e
        else
          Entry.make ~version:e.Entry.version ~definition:e.Entry.definition
            ~organism:e.Entry.organism ~features:e.Entry.features
            ~keywords:e.Entry.keywords ~accession:rename e.Entry.sequence)
      shared
  in
  let fresh_count = size - shared_count in
  let fresh =
    List.init fresh_count (fun i ->
        entry rng ~accession:(Printf.sprintf "BBB%06d" (shared_count + i + 1)) ())
  in
  (repo_a, copies @ fresh, List.rev !pairs)

type update =
  | Insert of Entry.t
  | Delete of string
  | Modify of Entry.t

let update_stream rng entries ?(fraction = 0.1) () =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let touches = max 1 (int_of_float (float_of_int n *. fraction)) in
  let updates = ref [] in
  let state = Hashtbl.create (2 * n) in
  List.iter (fun (e : Entry.t) -> Hashtbl.replace state e.Entry.accession e) entries;
  (* fresh accessions must not collide with anything live, nor with
     inserts from a previous update_stream round over the same rng *)
  let fresh_accession () =
    let rec pick () =
      let acc = Printf.sprintf "NEW%06d" (Rng.int rng 1_000_000) in
      if Hashtbl.mem state acc then pick () else acc
    in
    pick ()
  in
  for _ = 1 to touches do
    let kind = Rng.choose_weighted rng [| (`Modify, 0.5); (`Insert, 0.25); (`Delete, 0.25) |] in
    match kind with
    | `Insert ->
        let e = entry rng ~accession:(fresh_accession ()) () in
        Hashtbl.replace state e.Entry.accession e;
        updates := Insert e :: !updates
    | `Delete ->
        let live = Hashtbl.fold (fun k _ acc -> k :: acc) state [] in
        (match live with
        | [] -> ()
        | _ ->
            let victim = List.nth live (Rng.int rng (List.length live)) in
            Hashtbl.remove state victim;
            updates := Delete victim :: !updates)
    | `Modify ->
        let live = Hashtbl.fold (fun _ e acc -> e :: acc) state [] in
        (match live with
        | [] -> ()
        | _ ->
            let (victim : Entry.t) = List.nth live (Rng.int rng (List.length live)) in
            let mutated = Seqgen.mutate rng ~rate:0.01 victim.Entry.sequence in
            let e' =
              Entry.make
                ~version:(victim.Entry.version + 1)
                ~definition:victim.Entry.definition ~organism:victim.Entry.organism
                ~features:victim.Entry.features ~keywords:victim.Entry.keywords
                ~accession:victim.Entry.accession mutated
            in
            Hashtbl.replace state e'.Entry.accession e';
            updates := Modify e' :: !updates)
  done;
  let new_state =
    (* stable order: surviving originals first (original order), then inserts *)
    let surviving =
      List.filter_map
        (fun (e : Entry.t) -> Hashtbl.find_opt state e.Entry.accession)
        entries
    in
    let inserted =
      List.filter_map
        (function
          | Insert e -> Hashtbl.find_opt state e.Entry.accession
          | Delete _ | Modify _ -> None)
        (List.rev !updates)
    in
    surviving @ inserted
  in
  (new_state, List.rev !updates)
