(** Synthetic repository records: the stand-in for GenBank/EMBL/SwissProt
    contents, including the paper's data-quality pathologies — noisy
    copies (B10: "30-60% of sequences in GenBank are erroneous"),
    overlapping repositories with conflicting entries (B2), and update
    streams for change-detection experiments. *)

open Genalg_formats

val entry :
  Rng.t -> ?seq_length:int -> ?feature_count:int -> accession:string -> unit -> Entry.t
(** One annotated DNA entry (default ~1000 bp, 3 features). *)

val repository : Rng.t -> ?size:int -> ?seq_length:int -> ?prefix:string -> unit -> Entry.t list
(** [size] entries (default 100) with accessions ["<prefix>NNNNNN"]. *)

val noisy_copy : Rng.t -> ?error_rate:float -> ?rename:string -> Entry.t -> Entry.t
(** A copy as a second repository would hold it: re-accessioned under
    [rename] when given, sequence mutated at [error_rate] (default 0.02),
    definition occasionally reworded, features occasionally dropped. *)

val overlapping_repositories :
  Rng.t ->
  ?size:int ->
  ?overlap:float ->
  ?noise_fraction:float ->
  ?error_rate:float ->
  unit ->
  Entry.t list * Entry.t list * (string * string) list
(** Two repositories sharing [overlap] (default 0.5) of their entries,
    where [noise_fraction] (default 0.45, inside the paper's 30–60 % band)
    of the shared copies are noisy. Returns both repositories and the
    ground-truth duplicate pairs [(accession_a, accession_b)]. *)

type update =
  | Insert of Entry.t
  | Delete of string          (** accession *)
  | Modify of Entry.t         (** new version of an existing accession *)

val update_stream :
  Rng.t -> Entry.t list -> ?fraction:float -> unit -> Entry.t list * update list
(** Apply random inserts/deletes/modifies touching [fraction] (default
    0.1) of the repository; returns the new repository state and the
    updates (in application order). Modified entries get a bumped
    version. *)
