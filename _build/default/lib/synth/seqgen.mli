(** Random sequence generation: DNA/RNA/protein with controllable GC bias,
    motif planting, and point mutations. The stand-in for real repository
    sequence data (see DESIGN.md substitutions). *)

open Genalg_gdt

val dna : Rng.t -> ?gc:float -> int -> Sequence.t
(** Random DNA of the given length; [gc] (default 0.5) is the probability
    of a G/C base. *)

val rna : Rng.t -> ?gc:float -> int -> Sequence.t
val protein : Rng.t -> int -> Sequence.t

val dna_string : Rng.t -> ?gc:float -> int -> string

val plant_motif : Rng.t -> motif:string -> Sequence.t -> Sequence.t * int
(** Overwrite a random window with [motif]; returns the offset. Raises
    [Invalid_argument] when the motif is longer than the sequence. *)

val mutate : Rng.t -> rate:float -> Sequence.t -> Sequence.t
(** Per-position substitution with the given probability (alphabet
    preserved; a mutated base always changes). *)

val indel : Rng.t -> rate:float -> Sequence.t -> Sequence.t
(** Per-position insertions/deletions (half each) at the given rate. *)

val homolog : Rng.t -> identity:float -> Sequence.t -> Sequence.t
(** A diverged copy: substitutions at rate [1 - identity] plus light
    indels — the planted positive for similarity-search experiments. *)
