(** Synthetic genes, chromosomes and genomes.

    Generated genes are biologically well-formed by construction: the
    spliced exons form an ATG-initiated, stop-terminated open reading
    frame with no premature in-frame stop, so the central-dogma pipeline
    ([transcribe] → [splice] → [translate]) succeeds on every generated
    gene. *)

open Genalg_gdt

val gene :
  Rng.t ->
  ?exon_count:int ->
  ?exon_length:int ->
  ?intron_length:int ->
  ?code:Genetic_code.t ->
  id:string ->
  unit ->
  Gene.t
(** Default 3 exons of ~120 coding nucleotides each (multiple of 3 is
    enforced internally), introns of ~80 nt. *)

val chromosome :
  Rng.t ->
  ?gene_count:int ->
  ?spacer_length:int ->
  name:string ->
  unit ->
  Chromosome.t * Gene.t list
(** A chromosome assembled from generated genes separated by random
    intergenic spacers, with [gene] and [CDS] features annotating each
    gene's span. Returns the chromosome and the embedded genes (whose
    ids are ["<name>_gNN"]). *)

val genome :
  Rng.t ->
  ?chromosome_count:int ->
  ?genes_per_chromosome:int ->
  organism:string ->
  unit ->
  Genome.t
