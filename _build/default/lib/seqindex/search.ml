let naive_find ?(start = 0) ~pattern text =
  let m = String.length pattern and n = String.length text in
  if m = 0 then None
  else begin
    let limit = n - m in
    let rec at i j =
      if j = m then true else if text.[i + j] = pattern.[j] then at i (j + 1) else false
    in
    let rec loop i =
      if i > limit then None else if at i 0 then Some i else loop (i + 1)
    in
    loop (max 0 start)
  end

let naive_find_all ~pattern text =
  let rec loop start acc =
    match naive_find ~start ~pattern text with
    | None -> List.rev acc
    | Some i -> loop (i + 1) (i :: acc)
  in
  if String.length pattern = 0 then [] else loop 0 []

let horspool_table pattern =
  let m = String.length pattern in
  let table = Array.make 256 m in
  for j = 0 to m - 2 do
    table.(Char.code pattern.[j]) <- m - 1 - j
  done;
  table

let horspool_find ?(start = 0) ~pattern text =
  let m = String.length pattern and n = String.length text in
  if m = 0 || m > n then None
  else begin
    let table = horspool_table pattern in
    let rec loop i =
      if i > n - m then None
      else begin
        let rec check j = if j < 0 then true else if text.[i + j] = pattern.[j] then check (j - 1) else false in
        if check (m - 1) then Some i
        else loop (i + table.(Char.code text.[i + m - 1]))
      end
    in
    loop (max 0 start)
  end

let horspool_find_all ~pattern text =
  let m = String.length pattern and n = String.length text in
  if m = 0 || m > n then []
  else begin
    let table = horspool_table pattern in
    let acc = ref [] in
    let i = ref 0 in
    while !i <= n - m do
      let rec check j =
        if j < 0 then true else if text.[!i + j] = pattern.[j] then check (j - 1) else false
      in
      if check (m - 1) then acc := !i :: !acc;
      (* step by the bad-character shift; occurrences may overlap, so a
         match still advances by the table shift (>= 1), never 0 *)
      i := !i + table.(Char.code text.[!i + m - 1])
    done;
    List.rev !acc
  end
