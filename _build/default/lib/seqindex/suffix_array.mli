(** Suffix array over a text, built by prefix doubling.

    The second "genomic index structure" of paper section 6.5. Supports
    exact substring search of any pattern length in
    O(|pattern| · log |text|) by binary search over the sorted suffixes. *)

type t

val build : string -> t
(** O(n log² n) prefix-doubling construction. Letters are upper-cased. *)

val length : t -> int

val suffixes : t -> int array
(** The underlying array: [suffixes t].(r) is the start offset of the
    rank-[r] suffix. Do not mutate. *)

val find_all : t -> string -> int list
(** All occurrences, ascending; empty pattern yields []. *)

val find : t -> string -> int option
(** Leftmost occurrence. *)

val contains : t -> string -> bool

val longest_repeat : t -> (int * int * int) option
(** [(pos1, pos2, len)] of a longest substring occurring at two distinct
    positions (via adjacent-rank longest common prefixes); [None] when the
    text has fewer than 2 characters. *)
