lib/seqindex/search.ml: Array Char List String
