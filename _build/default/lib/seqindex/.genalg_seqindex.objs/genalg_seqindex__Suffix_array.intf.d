lib/seqindex/suffix_array.mli:
