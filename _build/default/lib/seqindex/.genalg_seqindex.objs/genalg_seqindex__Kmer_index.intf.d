lib/seqindex/kmer_index.mli:
