lib/seqindex/search.mli:
