lib/seqindex/suffix_array.ml: Array Char Fun Int List String
