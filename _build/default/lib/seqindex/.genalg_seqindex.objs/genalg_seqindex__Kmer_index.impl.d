lib/seqindex/kmer_index.ml: Hashtbl List Option Search String
