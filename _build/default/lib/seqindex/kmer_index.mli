(** K-mer inverted index over a DNA text.

    One of the two "genomic index structures" of paper section 6.5: every
    k-mer of the indexed text maps to its occurrence positions. Queries of
    length >= k look up their first k-mer and verify candidates in the
    text, giving sub-linear search after a linear build.

    Only k-mers consisting solely of canonical A/C/G/T letters are indexed
    (2-bit packed); windows containing ambiguity codes are skipped, and
    patterns containing them fall back to a linear verify over the whole
    text. *)

type t

val build : ?k:int -> string -> t
(** Index [text] (letters are upper-cased). Default [k = 12]. Raises
    [Invalid_argument] when [k] is outside [2, 31]. *)

val k : t -> int
val text_length : t -> int

val find_all : t -> string -> int list
(** All (possibly overlapping) occurrences of a pattern of length >= k,
    ascending. Patterns shorter than [k] are rejected with
    [Invalid_argument]. *)

val find : t -> string -> int option
val contains : t -> string -> bool

val distinct_kmers : t -> int
(** Number of distinct indexed k-mers (index cardinality). *)
