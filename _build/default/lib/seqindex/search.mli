(** Index-free substring search baselines.

    These are the comparison points for the genomic index structures of
    paper section 6.5: a naive scan and Boyer–Moore–Horspool. Both work on
    exact letters (no IUPAC ambiguity expansion) and are case-sensitive;
    normalise inputs to upper case first. *)

val naive_find_all : pattern:string -> string -> int list
(** All (possibly overlapping) occurrence offsets, ascending. An empty
    pattern yields []. *)

val naive_find : ?start:int -> pattern:string -> string -> int option

val horspool_find_all : pattern:string -> string -> int list
(** Boyer–Moore–Horspool with a 256-entry bad-character shift table. *)

val horspool_find : ?start:int -> pattern:string -> string -> int option
