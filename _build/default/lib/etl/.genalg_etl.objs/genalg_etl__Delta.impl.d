lib/etl/delta.ml: Entry Format Genalg_formats Hashtbl List Option
