lib/etl/monitor.ml: Acedb Array Delta Entry Genalg_align Genalg_formats Hashtbl List Printf Source String Tree_diff
