lib/etl/tree_diff.mli: Format Genalg_formats
