lib/etl/pipeline.ml: Genalg_core Genalg_storage Integrator List Loader Monitor Result Source
