lib/etl/pipeline.mli: Genalg_core Genalg_storage Loader Source
