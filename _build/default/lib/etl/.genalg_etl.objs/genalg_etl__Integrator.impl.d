lib/etl/integrator.ml: Array Entry Float Fun Genalg_align Genalg_formats Genalg_gdt Hashtbl Int List Option Provenance Sequence String Uncertain
