lib/etl/delta.mli: Entry Format Genalg_formats
