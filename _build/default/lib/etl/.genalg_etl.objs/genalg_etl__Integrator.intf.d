lib/etl/integrator.mli: Entry Genalg_formats Genalg_gdt Sequence Uncertain
