lib/etl/loader.mli: Delta Genalg_core Genalg_storage Integrator
