lib/etl/source.mli: Delta Entry Genalg_formats
