lib/etl/wrapper.ml: Entry Feature Fun Genalg_formats Genalg_gdt Gene List Location Printf Provenance Sequence
