lib/etl/monitor.mli: Delta Source
