lib/etl/tree_diff.ml: Array Format Genalg_align Genalg_formats List
