lib/etl/loader.ml: Array Delta Entry Genalg_adapter Genalg_core Genalg_formats Genalg_gdt Genalg_storage Gene Integrator List Option Printf Protein Provenance Result Sequence Uncertain Wrapper
