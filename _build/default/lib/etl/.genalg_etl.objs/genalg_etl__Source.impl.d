lib/etl/source.ml: Acedb Delta Entry Feature Genalg_formats Genalg_gdt Genbank List Location Option Printf Sequence String
