lib/etl/wrapper.mli: Entry Feature Genalg_formats Genalg_gdt Gene Provenance
