(** Source wrappers: restructure repository entries into GDT values.

    The ETL's second stage (paper section 5.1): "extracting relevant new or
    changed data from the sources and restructuring the data into the
    corresponding types provided by the Genomics Algebra." *)

open Genalg_gdt
open Genalg_formats

type extracted = {
  entry : Entry.t;
  provenance : Provenance.t;
  genes : Gene.t list;     (** one per CDS feature whose location is usable *)
  skipped_features : int;  (** CDS features whose locations could not be
                               converted (e.g. inner-complement joins) *)
}

val extract : source:string -> Entry.t -> extracted
(** Gene ids are ["<accession>:<gene qualifier or CDS index>"]. A CDS
    location of the form [range], [join(ranges)] or [complement(...)] of
    those becomes a gene whose DNA is the covering genomic span (sense
    strand of the CDS) and whose exons are the located spans. *)

val gene_of_cds : Entry.t -> Feature.t -> id:string -> Gene.t option
(** The single-feature core of {!extract}. *)
