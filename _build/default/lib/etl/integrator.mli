(** The warehouse integrator: duplicate detection and reconciliation
    across sources (paper section 5.2, "data integration").

    The semantic-heterogeneity problem is attacked with a standard
    blocking + scoring pipeline: candidate pairs are restricted to entries
    of the same organism with comparable lengths (blocking), then scored
    by k-mer profile similarity of their sequences combined with textual
    similarity of their definitions. Pairs above a threshold are declared
    duplicates; their values merge into one canonical entry, and
    disagreeing sequences are preserved as uncertainty alternatives (C9:
    "access to both alternatives should be given"). *)

open Genalg_gdt
open Genalg_formats

type merged = {
  canonical : Entry.t;                          (** representative record *)
  members : (string * Entry.t) list;            (** (source, entry), all of them *)
  sequence : Sequence.t Uncertain.t;            (** alternatives when members disagree *)
  consistent : bool;                            (** true when all members agree *)
}

val kmer_similarity : ?k:int -> Sequence.t -> Sequence.t -> float
(** Jaccard similarity of the k-mer sets (default k = 8), in [0, 1]. *)

val pair_score : Entry.t -> Entry.t -> float
(** Combined duplicate score in [0, 1]: 0 when organisms differ or
    lengths are incomparable; otherwise 0.8 · sequence similarity +
    0.2 · definition similarity. *)

val find_duplicates :
  ?threshold:float ->
  (string * Entry.t) list ->
  ((string * Entry.t) * (string * Entry.t) * float) list
(** Scored duplicate pairs above [threshold] (default 0.6) between entries
    of different sources. O(candidate pairs) after length/organism
    blocking. *)

val reconcile :
  ?threshold:float -> (string * Entry.t) list -> merged list
(** Cluster by duplicate pairs (union-find), merge each cluster. The
    canonical entry is the longest-definition member; sequence
    alternatives carry per-source provenance, with confidence
    proportional to how many members agree on each variant. *)
