module Acedb = Genalg_formats.Acedb
module Lcs = Genalg_align.Lcs

type edit =
  | Relabel of { path : string; before : string; after : string }
  | Insert_subtree of { path : string; node : Acedb.node }
  | Delete_subtree of { path : string; node : Acedb.node }

let rec diff_nodes path (a : Acedb.node) (b : Acedb.node) acc =
  if a.Acedb.tag <> b.Acedb.tag then
    Insert_subtree { path; node = b } :: Delete_subtree { path; node = a } :: acc
  else begin
    let here = if path = "" then a.Acedb.tag else path ^ "/" ^ a.Acedb.tag in
    let acc =
      if a.Acedb.value <> b.Acedb.value then
        Relabel { path = here; before = a.Acedb.value; after = b.Acedb.value } :: acc
      else acc
    in
    (* match identical child subtrees with an LCS, then pair leftover
       removed/added children by tag (in order) and recurse on the pairs *)
    let script =
      Lcs.diff ~equal:Acedb.equal
        (Array.of_list a.Acedb.children)
        (Array.of_list b.Acedb.children)
    in
    let removed =
      List.filter_map (function Lcs.Remove n -> Some n | _ -> None) script
    in
    let added =
      List.filter_map (function Lcs.Add n -> Some n | _ -> None) script
    in
    let rec pair acc removed added =
      match removed with
      | [] ->
          List.fold_left
            (fun acc n -> Insert_subtree { path = here; node = n } :: acc)
            acc added
      | (r : Acedb.node) :: rrest -> (
          (* first added node with the same tag pairs with r *)
          let rec take seen = function
            | [] -> None
            | (x : Acedb.node) :: xs ->
                if x.Acedb.tag = r.Acedb.tag then Some (x, List.rev_append seen xs)
                else take (x :: seen) xs
          in
          match take [] added with
          | Some (partner, rest_added) ->
              let acc = diff_nodes here r partner acc in
              pair acc rrest rest_added
          | None -> pair (Delete_subtree { path = here; node = r } :: acc) rrest added)
    in
    pair acc removed added
  end

let diff a b = List.rev (diff_nodes "" a b [])

let cost edits =
  List.fold_left
    (fun acc -> function
      | Relabel _ -> acc + 1
      | Insert_subtree { node; _ } | Delete_subtree { node; _ } -> acc + Acedb.size node)
    0 edits

let pp_edit ppf = function
  | Relabel { path; before; after } ->
      Format.fprintf ppf "relabel %s: %S -> %S" path before after
  | Insert_subtree { path; node } ->
      Format.fprintf ppf "insert under %s: %s (%d nodes)" path node.Acedb.tag
        (Acedb.size node)
  | Delete_subtree { path; node } ->
      Format.fprintf ppf "delete under %s: %s (%d nodes)" path node.Acedb.tag
        (Acedb.size node)
