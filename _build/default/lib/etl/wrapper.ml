open Genalg_gdt
open Genalg_formats

type extracted = {
  entry : Entry.t;
  provenance : Provenance.t;
  genes : Gene.t list;
  skipped_features : int;
}

(* Flatten a location into forward 1-based (lo, hi) spans, or None when it
   mixes strands (inner complements inside joins). *)
let rec forward_spans = function
  | Location.Point n -> Some [ (n, n) ]
  | Location.Range (lo, hi) -> Some [ (lo, hi) ]
  | Location.Join parts ->
      let rec collect acc = function
        | [] -> Some (List.concat (List.rev acc))
        | p :: rest -> (
            match forward_spans p with
            | Some spans -> collect (spans :: acc) rest
            | None -> None)
      in
      collect [] parts
  | Location.Complement _ -> None

let gene_of_cds (entry : Entry.t) (f : Feature.t) ~id =
  let location = f.Feature.location in
  let reverse, inner =
    match location with
    | Location.Complement inner -> (true, inner)
    | other -> (false, other)
  in
  match forward_spans inner with
  | None -> None
  | Some [] -> None
  | Some spans ->
      let lo = List.fold_left (fun acc (l, _) -> min acc l) max_int spans in
      let hi = List.fold_left (fun acc (_, h) -> max acc h) min_int spans in
      if lo < 1 || hi > Sequence.length entry.Entry.sequence then None
      else begin
        let region = Sequence.sub entry.Entry.sequence ~pos:(lo - 1) ~len:(hi - lo + 1) in
        if reverse then begin
          (* sense strand of the CDS: reverse-complement the covering
             region; exon spans flip end-for-end *)
          let region = Sequence.reverse_complement region in
          let total = Sequence.length region in
          let exons =
            spans
            |> List.map (fun (l, h) ->
                   let off_fwd = l - lo and len = h - l + 1 in
                   (total - (off_fwd + len), len))
            |> List.sort compare
          in
          match Gene.make ~exons ~id region with Ok g -> Some g | Error _ -> None
        end
        else begin
          let exons =
            List.sort compare (List.map (fun (l, h) -> (l - lo, h - l + 1)) spans)
          in
          match Gene.make ~exons ~id region with Ok g -> Some g | Error _ -> None
        end
      end

let extract ~source (entry : Entry.t) =
  let provenance =
    Provenance.make ~version:entry.Entry.version ~source
      ~record_id:entry.Entry.accession ()
  in
  let skipped = ref 0 in
  let genes =
    List.filter (fun (f : Feature.t) -> f.Feature.kind = Feature.Cds)
      entry.Entry.features
    |> List.mapi (fun i f ->
           let label =
             match Feature.name f with
             | Some n -> n
             | None -> Printf.sprintf "cds%d" (i + 1)
           in
           let id = Printf.sprintf "%s:%s" entry.Entry.accession label in
           match gene_of_cds entry f ~id with
           | Some g -> Some (Gene.with_provenance g provenance)
           | None ->
               incr skipped;
               None)
    |> List.filter_map Fun.id
  in
  { entry; provenance; genes; skipped_features = !skipped }
