(** The loader: final ETL stage, materializing reconciled data in the
    Unifying Database's public space.

    Warehouse schema (all in the public space, owned by the ETL actor):
    - [sequences](accession, version, source, organism, definition,
      seq dna, length, gc, consistent) — one row per merged record, the
      best-confidence sequence;
    - [genes](id, accession, gene, exon_count, length) — one row per CDS
      extracted by the wrapper, as an opaque [gene] UDT value;
    - [proteins](id, accession, protein, length, weight) — the decoded
      product of every gene whose CDS translates (the central dogma run
      at load time: the "low-level treatment" requirement C12 inverted);
    - [conflicts](accession, rank, confidence, source, seq dna) — every
      uncertainty alternative of inconsistent records (C9);
    - [history](accession, version, source, replaced_at, seq dna) — the
      a-priori data of every replaced or deleted record (section 5.2's
      delta contents; the archival requirement C15: deleted repository
      contents remain queryable).

    Supports both a full (re)load and a self-maintainable incremental
    load driven purely by deltas — the view-maintenance dichotomy of
    section 5.2. *)

module Db := Genalg_storage.Database

type stats = {
  entries : int;
  genes : int;
  proteins : int;
  conflicts : int;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val init : Db.t -> Genalg_core.Signature.t -> (unit, string) result
(** Create the warehouse tables (indexes on accession), attach the
    adapter. Idempotent-unsafe: call once per database. *)

val load_merged : Db.t -> Integrator.merged list -> (stats, string) result
(** Append merged records (and their genes and conflicts). *)

val clear : Db.t -> (unit, string) result
(** Delete all warehouse rows (for full-reload experiments). *)

val incremental : Db.t -> source:string -> Delta.t list -> (stats, string) result
(** Self-maintainable maintenance: apply source deltas directly to the
    warehouse by accession — deletions remove rows, insertions add rows,
    modifications replace rows — without consulting any source. Positive
    [stats] fields count rows written. *)
