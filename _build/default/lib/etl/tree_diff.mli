(** Ordered-tree diff for hierarchical (AceDB-like) records — our
    [acediff]: Figure 2 prescribes edit sequences over successive
    hierarchical snapshots.

    Identical subtrees are matched by an LCS over each node's child list;
    removed/added children with equal tags are paired and diffed
    recursively, so a one-field change deep in a record costs one relabel
    rather than a whole-subtree replacement. *)

type edit =
  | Relabel of { path : string; before : string; after : string }
      (** node value changed *)
  | Insert_subtree of { path : string; node : Genalg_formats.Acedb.node }
  | Delete_subtree of { path : string; node : Genalg_formats.Acedb.node }

val diff : Genalg_formats.Acedb.node -> Genalg_formats.Acedb.node -> edit list
(** Edit script from the first tree to the second; [] iff equal. Roots
    with different tags yield a delete+insert of whole trees. Paths are
    slash-separated tag sequences, e.g. ["Sequence/Feature"]. *)

val cost : edit list -> int
(** Relabels count 1; inserted/deleted subtrees count their node count. *)

val pp_edit : Format.formatter -> edit -> unit
