open Genalg_gdt
open Genalg_formats

type merged = {
  canonical : Entry.t;
  members : (string * Entry.t) list;
  sequence : Sequence.t Uncertain.t;
  consistent : bool;
}

let kmer_set k seq =
  let s = Sequence.to_string seq in
  let n = String.length s in
  let set = Hashtbl.create (max 16 n) in
  for i = 0 to n - k do
    Hashtbl.replace set (String.sub s i k) ()
  done;
  set

let kmer_similarity ?(k = 8) a b =
  if Sequence.length a < k || Sequence.length b < k then
    (if Sequence.equal a b then 1. else 0.)
  else begin
    let sa = kmer_set k a and sb = kmer_set k b in
    let small, large =
      if Hashtbl.length sa <= Hashtbl.length sb then (sa, sb) else (sb, sa)
    in
    let inter =
      Hashtbl.fold (fun key () acc -> if Hashtbl.mem large key then acc + 1 else acc) small 0
    in
    let union = Hashtbl.length sa + Hashtbl.length sb - inter in
    if union = 0 then 1. else float_of_int inter /. float_of_int union
  end

let default_k = 8

let jaccard sa sb =
  let small, large =
    if Hashtbl.length sa <= Hashtbl.length sb then (sa, sb) else (sb, sa)
  in
  let inter =
    Hashtbl.fold (fun key () acc -> if Hashtbl.mem large key then acc + 1 else acc) small 0
  in
  let union = Hashtbl.length sa + Hashtbl.length sb - inter in
  if union = 0 then 1. else float_of_int inter /. float_of_int union

(* Score with optionally precomputed k-mer sets, so bulk reconciliation
   builds each entry's set once instead of once per candidate pair. *)
let pair_score_with ?sets (a : Entry.t) (b : Entry.t) =
  if a.Entry.organism <> b.Entry.organism then 0.
  else begin
    let la = Sequence.length a.Entry.sequence and lb = Sequence.length b.Entry.sequence in
    let ratio =
      if la = 0 || lb = 0 then 0.
      else float_of_int (min la lb) /. float_of_int (max la lb)
    in
    if ratio < 0.7 then 0.
    else begin
      let seq_sim =
        match sets with
        | Some (sa, sb) -> jaccard sa sb
        | None -> kmer_similarity a.Entry.sequence b.Entry.sequence
      in
      let def_sim =
        Genalg_align.Distance.similarity a.Entry.definition b.Entry.definition
      in
      (0.8 *. seq_sim) +. (0.2 *. def_sim)
    end
  end

let pair_score a b = pair_score_with a b

(* Blocking: bucket entries by (organism, length band); only pairs sharing
   a bucket are scored. Length bands overlap by probing adjacent bands. *)
let band_width = 200

let buckets_of (e : Entry.t) =
  let len = Sequence.length e.Entry.sequence in
  let band = len / band_width in
  List.map
    (fun b -> (e.Entry.organism, b))
    (List.sort_uniq compare [ band - 1; band; band + 1 ])

let find_duplicates ?(threshold = 0.6) sourced =
  let indexed = List.mapi (fun i (src, e) -> (i, src, e)) sourced in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (i, _, e) ->
      List.iter
        (fun key ->
          let prev = Option.value (Hashtbl.find_opt table key) ~default:[] in
          Hashtbl.replace table key (i :: prev))
        (buckets_of e))
    indexed;
  let arr = Array.of_list indexed in
  let kmer_sets =
    Array.map (fun (_, _, (e : Entry.t)) -> kmer_set default_k e.Entry.sequence) arr
  in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  Array.iter
    (fun (i, src_i, (e_i : Entry.t)) ->
      let candidates =
        List.concat_map
          (fun key -> Option.value (Hashtbl.find_opt table key) ~default:[])
          (buckets_of e_i)
        |> List.sort_uniq Int.compare
      in
      List.iter
        (fun j ->
          if j > i && not (Hashtbl.mem seen (i, j)) then begin
            Hashtbl.add seen (i, j) ();
            let _, src_j, e_j = arr.(j) in
            if src_i <> src_j then begin
              let score =
                pair_score_with ~sets:(kmer_sets.(i), kmer_sets.(j)) e_i e_j
              in
              if score >= threshold then
                results := ((src_i, e_i), (src_j, e_j), score) :: !results
            end
          end)
        candidates)
    arr;
  List.sort
    (fun (_, _, s1) (_, _, s2) -> Float.compare s2 s1)
    !results

(* ---- clustering (union-find) -------------------------------------- *)

let reconcile ?threshold sourced =
  let n = List.length sourced in
  let arr = Array.of_list sourced in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (* map (source, accession) to index for pair lookup *)
  let index_of = Hashtbl.create 64 in
  Array.iteri
    (fun i (src, (e : Entry.t)) -> Hashtbl.replace index_of (src, e.Entry.accession) i)
    arr;
  let pairs = find_duplicates ?threshold sourced in
  List.iter
    (fun ((src_a, (ea : Entry.t)), (src_b, (eb : Entry.t)), _) ->
      match
        ( Hashtbl.find_opt index_of (src_a, ea.Entry.accession),
          Hashtbl.find_opt index_of (src_b, eb.Entry.accession) )
      with
      | Some i, Some j -> union i j
      | _ -> ())
    pairs;
  let clusters = Hashtbl.create 64 in
  Array.iteri
    (fun i member ->
      let root = find i in
      let prev = Option.value (Hashtbl.find_opt clusters root) ~default:[] in
      Hashtbl.replace clusters root (member :: prev))
    arr;
  let merge_cluster members =
    let members = List.rev members in
    let canonical =
      List.fold_left
        (fun (best : string * Entry.t) (candidate : string * Entry.t) ->
          if
            String.length (snd candidate).Entry.definition
            > String.length (snd best).Entry.definition
          then candidate
          else best)
        (List.hd members) (List.tl members)
      |> snd
    in
    (* group members by exact sequence *)
    let variants : (Sequence.t * (string * Entry.t) list) list =
      List.fold_left
        (fun acc (src, (e : Entry.t)) ->
          let rec add = function
            | [] -> [ (e.Entry.sequence, [ (src, e) ]) ]
            | (seq, supporters) :: rest ->
                if Sequence.equal seq e.Entry.sequence then
                  (seq, (src, e) :: supporters) :: rest
                else (seq, supporters) :: add rest
          in
          add acc)
        [] members
    in
    let total = float_of_int (List.length members) in
    let alternatives =
      List.map
        (fun (seq, supporters) ->
          let src, (e : Entry.t) =
            match supporters with s :: _ -> s | [] -> assert false
          in
          {
            Uncertain.value = seq;
            confidence = float_of_int (List.length supporters) /. total;
            provenance =
              Some (Provenance.make ~version:e.Entry.version ~source:src
                      ~record_id:e.Entry.accession ());
          })
        variants
    in
    {
      canonical;
      members;
      sequence = Uncertain.of_alternatives alternatives;
      consistent = List.length variants = 1;
    }
  in
  Hashtbl.fold (fun _ members acc -> merge_cluster members :: acc) clusters []
  |> List.sort (fun a b ->
         String.compare a.canonical.Entry.accession b.canonical.Entry.accession)
