(** Deltas: the change representation of paper section 5.2.

    "Each delta must be uniquely identifiable and contain (a) information
    about the data item to which it belongs and (b) the a priori and a
    posteriori data and the time stamp for when the update became
    effective." *)

open Genalg_formats

type t = {
  id : int;                  (** unique within a source's history *)
  item : string;             (** accession of the data item *)
  before : Entry.t option;   (** a priori data; [None] for inserts *)
  after : Entry.t option;    (** a posteriori data; [None] for deletes *)
  timestamp : float;
}

type kind = Insertion | Deletion | Modification

val kind : t -> kind
(** Raises [Invalid_argument] on a delta with neither side (never built
    by this library). *)

val insertion : id:int -> timestamp:float -> Entry.t -> t
val deletion : id:int -> timestamp:float -> Entry.t -> t
val modification : id:int -> timestamp:float -> before:Entry.t -> after:Entry.t -> t

val apply : t list -> Entry.t list -> Entry.t list
(** Replay deltas over a repository state (keyed by accession; insertion
    order preserved, inserts appended). *)

val pp : Format.formatter -> t -> unit
