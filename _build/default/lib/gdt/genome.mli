(** The [genome] genomic data type: an organism's chromosomes. *)

type t = private {
  organism : string;
  taxonomy : string list;  (** lineage, most general first *)
  chromosomes : Chromosome.t list;
}

val make : ?taxonomy:string list -> organism:string -> Chromosome.t list -> (t, string) result
(** Chromosome names must be distinct. *)

val make_exn : ?taxonomy:string list -> organism:string -> Chromosome.t list -> t

val total_length : t -> int
val chromosome_count : t -> int
val find_chromosome : t -> string -> Chromosome.t option

val all_features : t -> (string * Feature.t) list
(** Every feature paired with its chromosome name. *)

val gene_count : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
