(** Genetic codes (codon → amino acid translation tables).

    Codes are identified by their NCBI [transl_table] numbers. The standard
    code (1), the vertebrate mitochondrial code (2) and the
    bacterial/archaeal/plant-plastid code (11) are built in; further codes
    can be registered, in keeping with the algebra's extensibility goal. *)

type t

val standard : t
val vertebrate_mitochondrial : t
val bacterial : t

val by_id : int -> t option
(** Look up a registered code by NCBI table number. *)

val register : id:int -> name:string -> amino_acids:string -> starts:string -> t
(** Define and register a code from the 64-character NCBI table strings
    ([amino_acids] gives the residue per codon in TTT…GGG order, [starts]
    marks start codons with ['M']). Raises [Invalid_argument] if either
    string is not 64 characters or contains an unknown residue letter. *)

val id : t -> int
val name : t -> string

val codon_index : string -> int option
(** [codon_index "ATG"] is the 0..63 table index of a codon given as three
    DNA or RNA letters; [None] when any letter is ambiguous or invalid. *)

val translate_codon : t -> string -> Amino_acid.t
(** Translate one codon (3 letters, DNA or RNA). Codons containing
    ambiguity codes translate to a unique residue when every expansion
    agrees, and to {!Amino_acid.Xaa} otherwise. Raises [Invalid_argument]
    if the string is not 3 nucleotide letters. *)

val is_start_codon : t -> string -> bool
val is_stop_codon : t -> string -> bool

val start_codons : t -> string list
(** Start codons as DNA triplets, ascending by table index. *)

val stop_codons : t -> string list

val all : unit -> t list
(** Every registered code, ascending by id. *)

val back_translate : t -> Amino_acid.t -> string list
(** All DNA codons coding for the residue (empty for ambiguity codes). *)
