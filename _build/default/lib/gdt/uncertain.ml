type 'a alternative = {
  value : 'a;
  confidence : float;
  provenance : Provenance.t option;
}

type 'a t = 'a alternative list (* invariant: non-empty, sorted desc by confidence *)

let clamp c = if c < 0. then 0. else if c > 1. then 1. else c

let sort alts =
  List.stable_sort (fun a b -> Float.compare b.confidence a.confidence) alts

let certain v = [ { value = v; confidence = 1.; provenance = None } ]

let make ?provenance ~confidence v =
  [ { value = v; confidence = clamp confidence; provenance } ]

let of_alternatives = function
  | [] -> invalid_arg "Uncertain.of_alternatives: empty"
  | alts -> sort (List.map (fun a -> { a with confidence = clamp a.confidence }) alts)

let best = function
  | a :: _ -> a.value
  | [] -> assert false

let best_confidence = function
  | a :: _ -> a.confidence
  | [] -> assert false

let alternatives t = t
let cardinal = List.length

let is_certain = function
  | [ a ] -> a.confidence >= 1.
  | _ -> false

let map f t = List.map (fun a -> { a with value = f a.value }) t

let map_confidence ?(factor = 1.) f t =
  List.map
    (fun a -> { a with value = f a.value; confidence = clamp (a.confidence *. factor) })
    t

let bind f t =
  let expanded =
    List.concat_map
      (fun a ->
        List.map
          (fun b ->
            {
              b with
              confidence = clamp (a.confidence *. b.confidence);
              provenance = (match b.provenance with None -> a.provenance | p -> p);
            })
          (f a.value))
      t
  in
  sort expanded

let merge ~equal a b =
  let add acc alt =
    match List.partition (fun x -> equal x.value alt.value) acc with
    | [], _ -> alt :: acc
    | existing :: _, rest ->
        let keep = if existing.confidence >= alt.confidence then existing else alt in
        keep :: rest
  in
  sort (List.fold_left add a b)

let prune ~min_confidence = function
  | [] -> assert false
  | (first :: _) as t ->
      (match List.filter (fun a -> a.confidence >= min_confidence) t with
      | [] -> [ first ]
      | kept -> kept)

let equal eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> eq x.value y.value && Float.equal x.confidence y.confidence)
       a b

let pp pp_v ppf t =
  let pp_alt ppf a =
    Format.fprintf ppf "%a@%.2f" pp_v a.value a.confidence;
    match a.provenance with
    | Some p -> Format.fprintf ppf "[%a]" Provenance.pp p
    | None -> ()
  in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_alt) t
