(** The [chromosome] genomic data type: a long DNA sequence plus its
    feature annotations. *)

type t = private {
  name : string;
  dna : Sequence.t;
  features : Feature.t list;
}

val make : ?features:Feature.t list -> name:string -> Sequence.t -> (t, string) result
(** The sequence must be DNA and every feature location must fit within
    it. *)

val make_exn : ?features:Feature.t list -> name:string -> Sequence.t -> t

val length : t -> int

val features_of_kind : t -> Feature.kind -> Feature.t list

val features_overlapping : t -> lo:int -> hi:int -> Feature.t list
(** Features whose span intersects the 1-based inclusive window. *)

val add_feature : t -> Feature.t -> (t, string) result
(** Append an annotation (user annotations, paper C11/C13). *)

val feature_sequence : t -> Feature.t -> Sequence.t
(** Extract the located bases of a feature. *)

val genes : t -> (string * Sequence.t) list
(** For each [Gene] feature: its display name (or ["?"]) and extracted
    sequence. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
