type t = A | C | G | T | U | R | Y | S | W | K | M | B | D | H | V | N

let of_char c =
  match Char.uppercase_ascii c with
  | 'A' -> Some A
  | 'C' -> Some C
  | 'G' -> Some G
  | 'T' -> Some T
  | 'U' -> Some U
  | 'R' -> Some R
  | 'Y' -> Some Y
  | 'S' -> Some S
  | 'W' -> Some W
  | 'K' -> Some K
  | 'M' -> Some M
  | 'B' -> Some B
  | 'D' -> Some D
  | 'H' -> Some H
  | 'V' -> Some V
  | 'N' -> Some N
  | _ -> None

let of_char_exn c =
  match of_char c with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Nucleotide.of_char_exn: %C" c)

let to_char = function
  | A -> 'A'
  | C -> 'C'
  | G -> 'G'
  | T -> 'T'
  | U -> 'U'
  | R -> 'R'
  | Y -> 'Y'
  | S -> 'S'
  | W -> 'W'
  | K -> 'K'
  | M -> 'M'
  | B -> 'B'
  | D -> 'D'
  | H -> 'H'
  | V -> 'V'
  | N -> 'N'

let complement = function
  | A -> T
  | C -> G
  | G -> C
  | T -> A
  | U -> A
  | R -> Y
  | Y -> R
  | S -> S
  | W -> W
  | K -> M
  | M -> K
  | B -> V
  | D -> H
  | H -> D
  | V -> B
  | N -> N

let to_rna = function T -> U | b -> b
let to_dna = function U -> T | b -> b

let is_canonical_dna = function A | C | G | T -> true | _ -> false
let is_canonical_rna = function A | C | G | U -> true | _ -> false

let expand = function
  | A -> [ A ]
  | C -> [ C ]
  | G -> [ G ]
  | T -> [ T ]
  | U -> [ T ]
  | R -> [ A; G ]
  | Y -> [ C; T ]
  | S -> [ C; G ]
  | W -> [ A; T ]
  | K -> [ G; T ]
  | M -> [ A; C ]
  | B -> [ C; G; T ]
  | D -> [ A; G; T ]
  | H -> [ A; C; T ]
  | V -> [ A; C; G ]
  | N -> [ A; C; G; T ]

let is_ambiguous b =
  match expand b with [ _ ] -> false | _ -> true

let matches a b =
  let ea = expand a and eb = expand b in
  List.exists (fun x -> List.mem x eb) ea

let all = [ A; C; G; T; U; R; Y; S; W; K; M; B; D; H; V; N ]

let pp ppf b = Format.pp_print_char ppf (to_char b)
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
