type t = {
  id : string;
  name : string;
  dna : Sequence.t;
  exons : (int * int) list;
  code : Genetic_code.t;
  provenance : Provenance.t option;
}

let validate_exons ~total exons =
  let rec check prev_end = function
    | [] -> Ok ()
    | (off, len) :: rest ->
        if len <= 0 then Error (Printf.sprintf "exon at %d has non-positive length %d" off len)
        else if off < prev_end then
          Error (Printf.sprintf "exon at %d overlaps or precedes the previous exon" off)
        else if off + len > total then
          Error (Printf.sprintf "exon %d..%d exceeds gene length %d" off (off + len) total)
        else check (off + len) rest
  in
  check 0 exons

let make ?name ?exons ?(code = Genetic_code.standard) ?provenance ~id dna =
  match Sequence.alphabet dna with
  | Sequence.Rna | Sequence.Protein -> Error "gene sequence must be DNA"
  | Sequence.Dna ->
      let exons =
        match exons with
        | Some e -> e
        | None -> if Sequence.length dna = 0 then [] else [ (0, Sequence.length dna) ]
      in
      (match validate_exons ~total:(Sequence.length dna) exons with
      | Error _ as e -> e
      | Ok () ->
          let name = Option.value name ~default:id in
          Ok { id; name; dna; exons; code; provenance })

let make_exn ?name ?exons ?code ?provenance ~id dna =
  match make ?name ?exons ?code ?provenance ~id dna with
  | Ok g -> g
  | Error msg -> invalid_arg ("Gene.make_exn: " ^ msg)

let length t = Sequence.length t.dna
let exon_count t = List.length t.exons

let exonic_length t = List.fold_left (fun acc (_, len) -> acc + len) 0 t.exons

let introns t =
  (* An intron is the gap strictly between two consecutive exons. *)
  let rec between = function
    | (off1, len1) :: ((off2, _) :: _ as rest) ->
        let gap_start = off1 + len1 in
        if off2 > gap_start then (gap_start, off2 - gap_start) :: between rest
        else between rest
    | [ _ ] | [] -> []
  in
  between t.exons

let exon_sequences t =
  List.map (fun (off, len) -> Sequence.sub t.dna ~pos:off ~len) t.exons

let with_provenance t p = { t with provenance = Some p }

let equal a b =
  a.id = b.id && a.name = b.name
  && Sequence.equal a.dna b.dna
  && a.exons = b.exons
  && Genetic_code.id a.code = Genetic_code.id b.code

let pp ppf t =
  Format.fprintf ppf "gene %s (%s): %d bp, %d exon(s)" t.id t.name (length t)
    (exon_count t)
