(** Amino acids (the residues of protein GDT values).

    The twenty standard amino acids plus the translation-stop marker and the
    ambiguity codes ([B], [Z], [X]) used by protein repositories. *)

type t =
  | Ala | Arg | Asn | Asp | Cys | Gln | Glu | Gly | His | Ile
  | Leu | Lys | Met | Phe | Pro | Ser | Thr | Trp | Tyr | Val
  | Asx  (** B: Asn or Asp *)
  | Glx  (** Z: Gln or Glu *)
  | Xaa  (** X: unknown residue *)
  | Stop (** translation stop, printed as ['*'] *)

val of_char : char -> t option
(** One-letter code, case-insensitive. *)

val of_char_exn : char -> t

val to_char : t -> char
(** Upper-case one-letter code. *)

val to_three_letter : t -> string
(** Conventional three-letter abbreviation, e.g. ["Met"]; [Stop] is ["Ter"]. *)

val of_three_letter : string -> t option

val monoisotopic_mass : t -> float
(** Monoisotopic residue mass in daltons; ambiguity codes return an average
    of their alternatives and [Stop] returns [0.]. *)

val average_mass : t -> float
(** Average residue mass in daltons. *)

val hydropathy : t -> float
(** Kyte–Doolittle hydropathy index; [0.] for ambiguity codes and [Stop]. *)

val is_standard : t -> bool
(** True for the twenty standard residues. *)

val all_standard : t list

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
