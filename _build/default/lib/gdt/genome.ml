type t = {
  organism : string;
  taxonomy : string list;
  chromosomes : Chromosome.t list;
}

let make ?(taxonomy = []) ~organism chromosomes =
  let names = List.map (fun (c : Chromosome.t) -> c.Chromosome.name) chromosomes in
  let distinct = List.sort_uniq String.compare names in
  if List.length distinct <> List.length names then
    Error "duplicate chromosome names"
  else Ok { organism; taxonomy; chromosomes }

let make_exn ?taxonomy ~organism chromosomes =
  match make ?taxonomy ~organism chromosomes with
  | Ok g -> g
  | Error msg -> invalid_arg ("Genome.make_exn: " ^ msg)

let total_length t =
  List.fold_left (fun acc c -> acc + Chromosome.length c) 0 t.chromosomes

let chromosome_count t = List.length t.chromosomes

let find_chromosome t name =
  List.find_opt (fun (c : Chromosome.t) -> c.Chromosome.name = name) t.chromosomes

let all_features t =
  List.concat_map
    (fun (c : Chromosome.t) ->
      List.map (fun f -> (c.Chromosome.name, f)) c.Chromosome.features)
    t.chromosomes

let gene_count t =
  List.length
    (List.filter (fun (_, f) -> f.Feature.kind = Feature.Gene) (all_features t))

let equal a b =
  a.organism = b.organism && a.taxonomy = b.taxonomy
  && List.length a.chromosomes = List.length b.chromosomes
  && List.for_all2 Chromosome.equal a.chromosomes b.chromosomes

let pp ppf t =
  Format.fprintf ppf "genome of %s: %d chromosome(s), %d bp" t.organism
    (chromosome_count t) (total_length t)
