type primary = {
  gene_id : string;
  rna : Sequence.t;
  exons : (int * int) list;
  code : Genetic_code.t;
}

type mrna = {
  gene_id : string;
  rna : Sequence.t;
  code : Genetic_code.t;
}

let require_rna where seq =
  match Sequence.alphabet seq with
  | Sequence.Rna -> ()
  | Sequence.Dna | Sequence.Protein ->
      invalid_arg (where ^ ": sequence must be RNA")

let primary ~gene_id ~exons ~code rna =
  require_rna "Transcript.primary" rna;
  let total = Sequence.length rna in
  let rec check prev_end = function
    | [] -> ()
    | (off, len) :: rest ->
        if len <= 0 || off < prev_end || off + len > total then
          invalid_arg "Transcript.primary: invalid exon spans"
        else check (off + len) rest
  in
  check 0 exons;
  { gene_id; rna; exons; code }

let mrna ~gene_id ~code rna =
  require_rna "Transcript.mrna" rna;
  { gene_id; rna; code }

let primary_length (t : primary) = Sequence.length t.rna
let mrna_length (t : mrna) = Sequence.length t.rna

let equal_primary (a : primary) (b : primary) =
  a.gene_id = b.gene_id && Sequence.equal a.rna b.rna && a.exons = b.exons
  && Genetic_code.id a.code = Genetic_code.id b.code

let equal_mrna (a : mrna) (b : mrna) =
  a.gene_id = b.gene_id && Sequence.equal a.rna b.rna
  && Genetic_code.id a.code = Genetic_code.id b.code

let pp_primary ppf (t : primary) =
  Format.fprintf ppf "pre-mRNA of %s: %d nt, %d exon(s)" t.gene_id (primary_length t)
    (List.length t.exons)

let pp_mrna ppf (t : mrna) =
  Format.fprintf ppf "mRNA of %s: %d nt" t.gene_id (mrna_length t)
