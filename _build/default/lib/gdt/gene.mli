(** The [gene] genomic data type.

    A gene carries its genomic DNA (exons and introns), an ordered exon
    structure, the genetic code it is translated under, and provenance.
    Exons are half-open 0-based [(offset, length)] spans into [dna], in
    ascending, non-overlapping order — this is the information [splice]
    needs to turn a primary transcript into an mRNA (paper section 4.2). *)

type t = private {
  id : string;
  name : string;
  dna : Sequence.t;                (** genomic DNA, sense strand *)
  exons : (int * int) list;        (** (offset, length), ascending, disjoint *)
  code : Genetic_code.t;
  provenance : Provenance.t option;
}

val make :
  ?name:string ->
  ?exons:(int * int) list ->
  ?code:Genetic_code.t ->
  ?provenance:Provenance.t ->
  id:string ->
  Sequence.t ->
  (t, string) result
(** Build a gene. The sequence must be DNA. When [exons] is omitted the
    whole sequence is a single exon (an intron-less gene). Exons must be
    in ascending order, pairwise disjoint, non-empty, and within bounds.
    Default [code] is {!Genetic_code.standard}. *)

val make_exn :
  ?name:string ->
  ?exons:(int * int) list ->
  ?code:Genetic_code.t ->
  ?provenance:Provenance.t ->
  id:string ->
  Sequence.t ->
  t

val length : t -> int
(** Genomic length including introns. *)

val exon_count : t -> int

val exonic_length : t -> int
(** Sum of exon lengths (= mRNA length after splicing). *)

val introns : t -> (int * int) list
(** The gaps between exons, same representation. *)

val exon_sequences : t -> Sequence.t list

val with_provenance : t -> Provenance.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
