type t = {
  name : string;
  dna : Sequence.t;
  features : Feature.t list;
}

let check_feature dna (f : Feature.t) =
  let _, hi = Location.span f.Feature.location in
  if hi > Sequence.length dna then
    Error
      (Printf.sprintf "feature %s exceeds chromosome length %d"
         (Location.to_string f.Feature.location)
         (Sequence.length dna))
  else Ok ()

let make ?(features = []) ~name dna =
  match Sequence.alphabet dna with
  | Sequence.Rna | Sequence.Protein -> Error "chromosome sequence must be DNA"
  | Sequence.Dna ->
      let rec check = function
        | [] -> Ok { name; dna; features }
        | f :: rest -> ( match check_feature dna f with Ok () -> check rest | Error _ as e -> e)
      in
      check features

let make_exn ?features ~name dna =
  match make ?features ~name dna with
  | Ok c -> c
  | Error msg -> invalid_arg ("Chromosome.make_exn: " ^ msg)

let length t = Sequence.length t.dna

let features_of_kind t kind =
  List.filter (fun (f : Feature.t) -> f.Feature.kind = kind) t.features

let features_overlapping t ~lo ~hi =
  List.filter
    (fun (f : Feature.t) ->
      let flo, fhi = Location.span f.Feature.location in
      flo <= hi && lo <= fhi)
    t.features

let add_feature t f =
  match check_feature t.dna f with
  | Ok () -> Ok { t with features = t.features @ [ f ] }
  | Error _ as e -> e

let feature_sequence t (f : Feature.t) = Location.extract f.Feature.location t.dna

let genes t =
  List.map
    (fun f -> (Option.value (Feature.name f) ~default:"?", feature_sequence t f))
    (features_of_kind t Feature.Gene)

let equal a b =
  a.name = b.name && Sequence.equal a.dna b.dna
  && List.length a.features = List.length b.features
  && List.for_all2 Feature.equal a.features b.features

let pp ppf t =
  Format.fprintf ppf "chromosome %s: %d bp, %d feature(s)" t.name (length t)
    (List.length t.features)
