type alphabet = Dna | Rna | Protein
type encoding = Packed2 | Packed4 | Byte

type t = {
  alphabet : alphabet;
  encoding : encoding;
  len : int;
  payload : Bytes.t; (* packed data; layout depends on [encoding] *)
}

let alphabet t = t.alphabet
let encoding t = t.encoding
let length t = t.len

(* ------------------------------------------------------------------ *)
(* Encoding tables                                                     *)

(* Packed2: A=0 C=1 G=2 T/U=3, four bases per byte, little-end first.   *)

let packed2_code = function
  | 'A' -> 0
  | 'C' -> 1
  | 'G' -> 2
  | 'T' | 'U' -> 3
  | _ -> -1

let packed2_char_dna = [| 'A'; 'C'; 'G'; 'T' |]
let packed2_char_rna = [| 'A'; 'C'; 'G'; 'U' |]

(* Packed4: IUPAC bit sets A=1 C=2 G=4 T=8, two bases per byte,
   low nibble first. *)

let packed4_code c =
  match c with
  | 'A' -> 1
  | 'C' -> 2
  | 'G' -> 4
  | 'T' | 'U' -> 8
  | 'R' -> 5
  | 'Y' -> 10
  | 'S' -> 6
  | 'W' -> 9
  | 'K' -> 12
  | 'M' -> 3
  | 'B' -> 14
  | 'D' -> 13
  | 'H' -> 11
  | 'V' -> 7
  | 'N' -> 15
  | _ -> -1

let packed4_char_dna =
  (* index = bit set; 0 is unused *)
  [| '?'; 'A'; 'C'; 'M'; 'G'; 'R'; 'S'; 'V'; 'T'; 'W'; 'Y'; 'H'; 'K'; 'D'; 'B'; 'N' |]

let packed4_char_rna =
  [| '?'; 'A'; 'C'; 'M'; 'G'; 'R'; 'S'; 'V'; 'U'; 'W'; 'Y'; 'H'; 'K'; 'D'; 'B'; 'N' |]

let valid_protein c = Amino_acid.of_char c <> None

let valid_nucleotide alpha c =
  match Nucleotide.of_char c with
  | None -> false
  | Some b -> (
      match alpha, b with
      | Dna, Nucleotide.U -> false
      | Rna, Nucleotide.T -> false
      | (Dna | Rna), _ -> true
      | Protein, _ -> false)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let pack2 s =
  let n = String.length s in
  let buf = Bytes.make ((n + 3) / 4) '\000' in
  for i = 0 to n - 1 do
    let code = packed2_code s.[i] in
    let byte = i / 4 and off = (i mod 4) * 2 in
    Bytes.unsafe_set buf byte
      (Char.chr (Char.code (Bytes.unsafe_get buf byte) lor (code lsl off)))
  done;
  buf

let pack4 s =
  let n = String.length s in
  let buf = Bytes.make ((n + 1) / 2) '\000' in
  for i = 0 to n - 1 do
    let code = packed4_code s.[i] in
    let byte = i / 2 and off = (i mod 2) * 4 in
    Bytes.unsafe_set buf byte
      (Char.chr (Char.code (Bytes.unsafe_get buf byte) lor (code lsl off)))
  done;
  buf

let of_string alpha s =
  let n = String.length s in
  let s = String.uppercase_ascii s in
  match alpha with
  | Protein ->
      let bad = ref None in
      String.iteri (fun i c -> if !bad = None && not (valid_protein c) then bad := Some (i, c)) s;
      (match !bad with
      | Some (i, c) ->
          Error (Printf.sprintf "invalid amino-acid code %C at position %d" c i)
      | None -> Ok { alphabet = Protein; encoding = Byte; len = n; payload = Bytes.of_string s })
  | Dna | Rna ->
      let bad = ref None and canonical = ref true in
      String.iteri
        (fun i c ->
          if !bad = None then
            if not (valid_nucleotide alpha c) then bad := Some (i, c)
            else if packed2_code c < 0 then canonical := false)
        s;
      (match !bad with
      | Some (i, c) ->
          Error (Printf.sprintf "invalid nucleotide code %C at position %d" c i)
      | None ->
          if !canonical then
            Ok { alphabet = alpha; encoding = Packed2; len = n; payload = pack2 s }
          else Ok { alphabet = alpha; encoding = Packed4; len = n; payload = pack4 s })

let of_string_exn alpha s =
  match of_string alpha s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Sequence.of_string_exn: " ^ msg)

let dna s = of_string_exn Dna s
let rna s = of_string_exn Rna s
let protein s = of_string_exn Protein s
let empty alpha = of_string_exn alpha ""

(* ------------------------------------------------------------------ *)
(* Access                                                              *)

let unsafe_get t i =
  match t.encoding with
  | Byte -> Bytes.unsafe_get t.payload i
  | Packed2 ->
      let code = (Char.code (Bytes.unsafe_get t.payload (i / 4)) lsr ((i mod 4) * 2)) land 3 in
      (match t.alphabet with
      | Rna -> Array.unsafe_get packed2_char_rna code
      | Dna | Protein -> Array.unsafe_get packed2_char_dna code)
  | Packed4 ->
      let code = (Char.code (Bytes.unsafe_get t.payload (i / 2)) lsr ((i mod 2) * 4)) land 15 in
      (match t.alphabet with
      | Rna -> Array.unsafe_get packed4_char_rna code
      | Dna | Protein -> Array.unsafe_get packed4_char_dna code)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sequence.get: index out of bounds";
  unsafe_get t i

let get_base t i =
  match t.alphabet with
  | Protein -> invalid_arg "Sequence.get_base: protein sequence"
  | Dna | Rna -> Nucleotide.of_char_exn (get t i)

let get_residue t i =
  match t.alphabet with
  | Protein -> Amino_acid.of_char_exn (get t i)
  | Dna | Rna -> invalid_arg "Sequence.get_residue: nucleotide sequence"

let to_string t =
  String.init t.len (fun i -> unsafe_get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unsafe_get t i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let count pred t =
  fold_left (fun n c -> if pred c then n + 1 else n) 0 t

let gc_count t =
  match t.alphabet with
  | Protein -> invalid_arg "Sequence.gc_count: protein sequence"
  | Dna | Rna -> count (function 'G' | 'C' | 'S' -> true | _ -> false) t

(* ------------------------------------------------------------------ *)
(* Slicing and assembly                                                *)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Sequence.sub: bounds";
  of_string_exn t.alphabet (String.init len (fun i -> unsafe_get t (pos + i)))

let concat = function
  | [] -> empty Dna
  | first :: _ as parts ->
      let alpha = first.alphabet in
      let ok = List.for_all (fun p -> p.alphabet = alpha) parts in
      if not ok then invalid_arg "Sequence.concat: mixed alphabets";
      of_string_exn alpha (String.concat "" (List.map to_string parts))

let append a b = concat [ a; b ]

let rev t =
  of_string_exn t.alphabet (String.init t.len (fun i -> unsafe_get t (t.len - 1 - i)))

let complement t =
  match t.alphabet with
  | Protein -> invalid_arg "Sequence.complement: protein sequence"
  | Dna | Rna ->
      let comp c =
        let b = Nucleotide.complement (Nucleotide.of_char_exn c) in
        let b = if t.alphabet = Rna then Nucleotide.to_rna b else b in
        Nucleotide.to_char b
      in
      of_string_exn t.alphabet (String.init t.len (fun i -> comp (unsafe_get t i)))

let reverse_complement t = rev (complement t)

let to_rna t =
  match t.alphabet with
  | Rna -> t
  | Protein -> invalid_arg "Sequence.to_rna: protein sequence"
  | Dna ->
      let conv c = if c = 'T' then 'U' else c in
      of_string_exn Rna (String.init t.len (fun i -> conv (unsafe_get t i)))

let to_dna t =
  match t.alphabet with
  | Dna -> t
  | Protein -> invalid_arg "Sequence.to_dna: protein sequence"
  | Rna ->
      let conv c = if c = 'U' then 'T' else c in
      of_string_exn Dna (String.init t.len (fun i -> conv (unsafe_get t i)))

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let char_matches alpha a b =
  if a = b then true
  else
    match alpha with
    | Protein -> false
    | Dna | Rna -> (
        match Nucleotide.of_char a, Nucleotide.of_char b with
        | Some x, Some y -> Nucleotide.matches x y
        | _ -> false)

let find ?(start = 0) ~pattern t =
  let m = String.length pattern in
  let pattern = String.uppercase_ascii pattern in
  if m = 0 then if start <= t.len then Some start else None
  else begin
    let limit = t.len - m in
    let rec at i j =
      if j = m then true
      else if char_matches t.alphabet (unsafe_get t (i + j)) pattern.[j] then at i (j + 1)
      else false
    in
    let rec loop i =
      if i > limit then None else if at i 0 then Some i else loop (i + 1)
    in
    loop (max 0 start)
  end

let find_all ~pattern t =
  let rec loop start acc =
    match find ~start ~pattern t with
    | None -> List.rev acc
    | Some i -> loop (i + 1) (i :: acc)
  in
  if String.length pattern = 0 then []
  else loop 0 []

let contains ~pattern t = find ~pattern t <> None

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let equal a b =
  a.alphabet = b.alphabet && a.len = b.len
  &&
  let rec loop i =
    i >= a.len || (unsafe_get a i = unsafe_get b i && loop (i + 1))
  in
  loop 0

let compare a b =
  let c = Stdlib.compare a.alphabet b.alphabet in
  if c <> 0 then c
  else
    let n = min a.len b.len in
    let rec loop i =
      if i = n then Stdlib.compare a.len b.len
      else
        let c = Char.compare (unsafe_get a i) (unsafe_get b i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Hashtbl.hash (t.alphabet, to_string t)

let memory_bytes t = Bytes.length t.payload

(* ------------------------------------------------------------------ *)
(* Binary serialization (the "compact storage area" of section 4.4)    *)

let tag_of t =
  let a = match t.alphabet with Dna -> 0 | Rna -> 1 | Protein -> 2 in
  let e = match t.encoding with Packed2 -> 0 | Packed4 -> 1 | Byte -> 2 in
  (a lsl 2) lor e

let to_bytes t =
  let payload_len = Bytes.length t.payload in
  let buf = Bytes.create (1 + 8 + payload_len) in
  Bytes.set buf 0 (Char.chr (tag_of t));
  Bytes.set_int64_le buf 1 (Int64.of_int t.len);
  Bytes.blit t.payload 0 buf 9 payload_len;
  buf

let of_bytes buf =
  if Bytes.length buf < 9 then Error "Sequence.of_bytes: truncated header"
  else
    let tag = Char.code (Bytes.get buf 0) in
    let alpha =
      match tag lsr 2 with 0 -> Some Dna | 1 -> Some Rna | 2 -> Some Protein | _ -> None
    in
    let enc =
      match tag land 3 with 0 -> Some Packed2 | 1 -> Some Packed4 | 2 -> Some Byte | _ -> None
    in
    match alpha, enc with
    | Some alphabet, Some encoding ->
        let len = Int64.to_int (Bytes.get_int64_le buf 1) in
        let expected =
          match encoding with
          | Packed2 -> (len + 3) / 4
          | Packed4 -> (len + 1) / 2
          | Byte -> len
        in
        if len < 0 || Bytes.length buf <> 9 + expected then
          Error "Sequence.of_bytes: payload length mismatch"
        else
          Ok { alphabet; encoding; len; payload = Bytes.sub buf 9 expected }
    | _ -> Error "Sequence.of_bytes: bad tag byte"

let pp ppf t =
  let n = min t.len 60 in
  let prefix = String.init n (fun i -> unsafe_get t i) in
  if t.len <= 60 then Format.fprintf ppf "%s" prefix
  else Format.fprintf ppf "%s… (%d)" prefix t.len
