(** Nucleotide bases, including the full IUPAC ambiguity alphabet.

    The Genomics Algebra treats nucleotides as the atomic genomic data type
    from which DNA and RNA sequences are built (paper section 4.2). We support
    the four canonical DNA bases, uracil for RNA, and the eleven IUPAC
    ambiguity codes that appear throughout real repository data. *)

type t =
  | A  (** adenine *)
  | C  (** cytosine *)
  | G  (** guanine *)
  | T  (** thymine (DNA) *)
  | U  (** uracil (RNA) *)
  | R  (** purine: A or G *)
  | Y  (** pyrimidine: C or T/U *)
  | S  (** strong: G or C *)
  | W  (** weak: A or T/U *)
  | K  (** keto: G or T/U *)
  | M  (** amino: A or C *)
  | B  (** not A *)
  | D  (** not C *)
  | H  (** not G *)
  | V  (** not T/U *)
  | N  (** any base *)

val of_char : char -> t option
(** [of_char c] parses an IUPAC code, case-insensitively. *)

val of_char_exn : char -> t
(** Like {!of_char} but raises [Invalid_argument] on unknown codes. *)

val to_char : t -> char
(** Upper-case IUPAC character for the base. [U] prints as ['U']. *)

val complement : t -> t
(** Watson–Crick complement, extended over ambiguity codes (e.g. the
    complement of [R] (A/G) is [Y] (T/C)). [U] complements to [A]. *)

val to_rna : t -> t
(** Replace [T] with [U]; all other bases unchanged. *)

val to_dna : t -> t
(** Replace [U] with [T]; all other bases unchanged. *)

val is_canonical_dna : t -> bool
(** True for [A], [C], [G], [T] only. *)

val is_canonical_rna : t -> bool
(** True for [A], [C], [G], [U] only. *)

val is_ambiguous : t -> bool
(** True for every code that denotes more than one concrete base. *)

val expand : t -> t list
(** Concrete DNA bases an ambiguity code may stand for; canonical bases
    expand to themselves, and [U] expands to [[T]]. *)

val matches : t -> t -> bool
(** [matches a b] is true when the sets of concrete bases denoted by [a] and
    [b] intersect; this is the semantics used by pattern search over
    ambiguous sequences. *)

val all : t list
(** All sixteen codes, in declaration order. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
