(** Uncertainty-carrying values.

    Biological results "are inherently uncertain and never guaranteed …
    always attached with some degree of uncertainty" (paper section 4.3),
    and when two repositories disagree "access to both alternatives should
    be given" (C9). ['a Uncertain.t] is a non-empty set of alternatives,
    each with a confidence in [0, 1] and optional provenance, ordered by
    decreasing confidence. Algebra operations propagate uncertainty by
    mapping over alternatives and multiplying confidences. *)

type 'a alternative = {
  value : 'a;
  confidence : float;
  provenance : Provenance.t option;
}

type 'a t

val certain : 'a -> 'a t
(** A single alternative with confidence 1. *)

val make : ?provenance:Provenance.t -> confidence:float -> 'a -> 'a t
(** One alternative; confidence is clamped to [0, 1]. *)

val of_alternatives : 'a alternative list -> 'a t
(** Sorts by decreasing confidence. Raises [Invalid_argument] on []. *)

val best : 'a t -> 'a
(** Highest-confidence value. *)

val best_confidence : 'a t -> float

val alternatives : 'a t -> 'a alternative list
(** All alternatives, best first. *)

val cardinal : 'a t -> int

val is_certain : 'a t -> bool
(** True when there is a single alternative with confidence 1. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Apply a function to every alternative, keeping confidences. *)

val map_confidence : ?factor:float -> ('a -> 'b) -> 'a t -> 'b t
(** Like {!map} but additionally scales every confidence by [factor]
    (default 1.); models operations that themselves add uncertainty, such
    as the paper's approximated [splice]. *)

val bind : ('a -> 'b t) -> 'a t -> 'b t
(** Monadic composition: confidences multiply. *)

val merge : equal:('a -> 'a -> bool) -> 'a t -> 'a t -> 'a t
(** Union of alternatives from two (possibly conflicting) sources; equal
    values are coalesced keeping the higher confidence, and the result is
    renormalised so the best alternative's confidence is unchanged but
    ordering is by confidence. Used by the warehouse integrator for
    conflicting repository values. *)

val prune : min_confidence:float -> 'a t -> 'a t
(** Drop alternatives below the threshold; always keeps the best one. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
