type t = {
  id : string;
  name : string;
  residues : Sequence.t;
  provenance : Provenance.t option;
}

let make ?name ?provenance ~id residues =
  match Sequence.alphabet residues with
  | Sequence.Dna | Sequence.Rna -> Error "protein sequence must use the protein alphabet"
  | Sequence.Protein ->
      Ok { id; name = Option.value name ~default:id; residues; provenance }

let make_exn ?name ?provenance ~id residues =
  match make ?name ?provenance ~id residues with
  | Ok p -> p
  | Error msg -> invalid_arg ("Protein.make_exn: " ^ msg)

let length t = Sequence.length t.residues

let water_mass = 18.01528

let molecular_weight t =
  let sum =
    Sequence.fold_left
      (fun acc c ->
        let aa = Amino_acid.of_char_exn c in
        if Amino_acid.equal aa Amino_acid.Stop then acc
        else acc +. Amino_acid.average_mass aa)
      0. t.residues
  in
  if length t = 0 then 0. else sum +. water_mass

let hydropathy_profile t ~window =
  let n = length t in
  if window <= 0 || window mod 2 = 0 || window > n then
    invalid_arg "Protein.hydropathy_profile: window must be positive, odd, <= length";
  let values =
    Array.init n (fun i -> Amino_acid.hydropathy (Sequence.get_residue t.residues i))
  in
  let out = Array.make (n - window + 1) 0. in
  let sum = ref 0. in
  for i = 0 to window - 1 do
    sum := !sum +. values.(i)
  done;
  out.(0) <- !sum /. float_of_int window;
  for i = 1 to n - window do
    sum := !sum -. values.(i - 1) +. values.(i + window - 1);
    out.(i) <- !sum /. float_of_int window
  done;
  out

let equal a b =
  a.id = b.id && a.name = b.name && Sequence.equal a.residues b.residues

let pp ppf t = Format.fprintf ppf "protein %s (%s): %d aa" t.id t.name (length t)
