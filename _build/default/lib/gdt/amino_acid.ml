type t =
  | Ala | Arg | Asn | Asp | Cys | Gln | Glu | Gly | His | Ile
  | Leu | Lys | Met | Phe | Pro | Ser | Thr | Trp | Tyr | Val
  | Asx | Glx | Xaa | Stop

let of_char c =
  match Char.uppercase_ascii c with
  | 'A' -> Some Ala
  | 'R' -> Some Arg
  | 'N' -> Some Asn
  | 'D' -> Some Asp
  | 'C' -> Some Cys
  | 'Q' -> Some Gln
  | 'E' -> Some Glu
  | 'G' -> Some Gly
  | 'H' -> Some His
  | 'I' -> Some Ile
  | 'L' -> Some Leu
  | 'K' -> Some Lys
  | 'M' -> Some Met
  | 'F' -> Some Phe
  | 'P' -> Some Pro
  | 'S' -> Some Ser
  | 'T' -> Some Thr
  | 'W' -> Some Trp
  | 'Y' -> Some Tyr
  | 'V' -> Some Val
  | 'B' -> Some Asx
  | 'Z' -> Some Glx
  | 'X' -> Some Xaa
  | '*' -> Some Stop
  | _ -> None

let of_char_exn c =
  match of_char c with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Amino_acid.of_char_exn: %C" c)

let to_char = function
  | Ala -> 'A'
  | Arg -> 'R'
  | Asn -> 'N'
  | Asp -> 'D'
  | Cys -> 'C'
  | Gln -> 'Q'
  | Glu -> 'E'
  | Gly -> 'G'
  | His -> 'H'
  | Ile -> 'I'
  | Leu -> 'L'
  | Lys -> 'K'
  | Met -> 'M'
  | Phe -> 'F'
  | Pro -> 'P'
  | Ser -> 'S'
  | Thr -> 'T'
  | Trp -> 'W'
  | Tyr -> 'Y'
  | Val -> 'V'
  | Asx -> 'B'
  | Glx -> 'Z'
  | Xaa -> 'X'
  | Stop -> '*'

let to_three_letter = function
  | Ala -> "Ala"
  | Arg -> "Arg"
  | Asn -> "Asn"
  | Asp -> "Asp"
  | Cys -> "Cys"
  | Gln -> "Gln"
  | Glu -> "Glu"
  | Gly -> "Gly"
  | His -> "His"
  | Ile -> "Ile"
  | Leu -> "Leu"
  | Lys -> "Lys"
  | Met -> "Met"
  | Phe -> "Phe"
  | Pro -> "Pro"
  | Ser -> "Ser"
  | Thr -> "Thr"
  | Trp -> "Trp"
  | Tyr -> "Tyr"
  | Val -> "Val"
  | Asx -> "Asx"
  | Glx -> "Glx"
  | Xaa -> "Xaa"
  | Stop -> "Ter"

let all_standard =
  [ Ala; Arg; Asn; Asp; Cys; Gln; Glu; Gly; His; Ile;
    Leu; Lys; Met; Phe; Pro; Ser; Thr; Trp; Tyr; Val ]

let of_three_letter s =
  let s = String.capitalize_ascii (String.lowercase_ascii s) in
  let table =
    List.map (fun a -> (to_three_letter a, a)) (all_standard @ [ Asx; Glx; Xaa; Stop ])
  in
  List.assoc_opt s table

let monoisotopic_mass = function
  | Ala -> 71.03711
  | Arg -> 156.10111
  | Asn -> 114.04293
  | Asp -> 115.02694
  | Cys -> 103.00919
  | Gln -> 128.05858
  | Glu -> 129.04259
  | Gly -> 57.02146
  | His -> 137.05891
  | Ile -> 113.08406
  | Leu -> 113.08406
  | Lys -> 128.09496
  | Met -> 131.04049
  | Phe -> 147.06841
  | Pro -> 97.05276
  | Ser -> 87.03203
  | Thr -> 101.04768
  | Trp -> 186.07931
  | Tyr -> 163.06333
  | Val -> 99.06841
  | Asx -> (114.04293 +. 115.02694) /. 2.
  | Glx -> (128.05858 +. 129.04259) /. 2.
  | Xaa -> 110.0
  | Stop -> 0.

let average_mass = function
  | Ala -> 71.0788
  | Arg -> 156.1875
  | Asn -> 114.1038
  | Asp -> 115.0886
  | Cys -> 103.1388
  | Gln -> 128.1307
  | Glu -> 129.1155
  | Gly -> 57.0519
  | His -> 137.1411
  | Ile -> 113.1594
  | Leu -> 113.1594
  | Lys -> 128.1741
  | Met -> 131.1926
  | Phe -> 147.1766
  | Pro -> 97.1167
  | Ser -> 87.0782
  | Thr -> 101.1051
  | Trp -> 186.2132
  | Tyr -> 163.1760
  | Val -> 99.1326
  | Asx -> (114.1038 +. 115.0886) /. 2.
  | Glx -> (128.1307 +. 129.1155) /. 2.
  | Xaa -> 110.0
  | Stop -> 0.

let hydropathy = function
  | Ala -> 1.8
  | Arg -> -4.5
  | Asn -> -3.5
  | Asp -> -3.5
  | Cys -> 2.5
  | Gln -> -3.5
  | Glu -> -3.5
  | Gly -> -0.4
  | His -> -3.2
  | Ile -> 4.5
  | Leu -> 3.8
  | Lys -> -3.9
  | Met -> 1.9
  | Phe -> 2.8
  | Pro -> -1.6
  | Ser -> -0.8
  | Thr -> -0.7
  | Trp -> -0.9
  | Tyr -> -1.3
  | Val -> 4.2
  | Asx | Glx | Xaa | Stop -> 0.

let is_standard = function Asx | Glx | Xaa | Stop -> false | _ -> true

let pp ppf a = Format.pp_print_char ppf (to_char a)
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
