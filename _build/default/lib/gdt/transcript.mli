(** Primary transcripts and messenger RNA — the intermediate sorts of the
    paper's mini algebra ([transcribe : gene -> primarytranscript],
    [splice : primarytranscript -> mrna], section 4.2). *)

type primary = private {
  gene_id : string;
  rna : Sequence.t;            (** full pre-mRNA, introns included *)
  exons : (int * int) list;    (** exon spans carried over from the gene *)
  code : Genetic_code.t;
}

type mrna = private {
  gene_id : string;
  rna : Sequence.t;            (** spliced, exons only *)
  code : Genetic_code.t;
}

val primary :
  gene_id:string -> exons:(int * int) list -> code:Genetic_code.t -> Sequence.t -> primary
(** Build a primary transcript; the sequence must be RNA, exon spans must be
    valid within it. Raises [Invalid_argument] otherwise. *)

val mrna : gene_id:string -> code:Genetic_code.t -> Sequence.t -> mrna
(** The sequence must be RNA. *)

val primary_length : primary -> int
val mrna_length : mrna -> int

val equal_primary : primary -> primary -> bool
val equal_mrna : mrna -> mrna -> bool

val pp_primary : Format.formatter -> primary -> unit
val pp_mrna : Format.formatter -> mrna -> unit
