type t = {
  id : int;
  name : string;
  table : Amino_acid.t array; (* 64 entries, TTT..GGG order *)
  starts : bool array;        (* 64 entries *)
}

let id t = t.id
let name t = t.name

let bases = [| 'T'; 'C'; 'A'; 'G' |]

let base_index c =
  match c with
  | 'T' | 'U' | 't' | 'u' -> Some 0
  | 'C' | 'c' -> Some 1
  | 'A' | 'a' -> Some 2
  | 'G' | 'g' -> Some 3
  | _ -> None

let codon_index codon =
  if String.length codon <> 3 then None
  else
    match base_index codon.[0], base_index codon.[1], base_index codon.[2] with
    | Some a, Some b, Some c -> Some ((a * 16) + (b * 4) + c)
    | _ -> None

let codon_of_index i =
  String.init 3 (fun k ->
      match k with
      | 0 -> bases.(i / 16)
      | 1 -> bases.(i / 4 mod 4)
      | _ -> bases.(i mod 4))

let registry : (int, t) Hashtbl.t = Hashtbl.create 8

let register ~id ~name ~amino_acids ~starts =
  if String.length amino_acids <> 64 then
    invalid_arg "Genetic_code.register: amino_acids must be 64 characters";
  if String.length starts <> 64 then
    invalid_arg "Genetic_code.register: starts must be 64 characters";
  let table =
    Array.init 64 (fun i ->
        match Amino_acid.of_char amino_acids.[i] with
        | Some a -> a
        | None ->
            invalid_arg
              (Printf.sprintf "Genetic_code.register: bad residue %C" amino_acids.[i]))
  in
  let start_flags = Array.init 64 (fun i -> starts.[i] = 'M') in
  let code = { id; name; table; starts = start_flags } in
  Hashtbl.replace registry id code;
  code

let standard =
  register ~id:1 ~name:"Standard"
    ~amino_acids:"FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG"
    ~starts:"---M---------------M---------------M----------------------------"

let vertebrate_mitochondrial =
  register ~id:2 ~name:"Vertebrate Mitochondrial"
    ~amino_acids:"FFLLSSSSYY**CCWWLLLLPPPPHHQQRRRRIIMMTTTTNNKKSS**VVVVAAAADDEEGGGG"
    ~starts:"--------------------------------MMMM---------------M------------"

let bacterial =
  register ~id:11 ~name:"Bacterial, Archaeal and Plant Plastid"
    ~amino_acids:"FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG"
    ~starts:"---M------**--*----M------------MMMM---------------M------------"

let by_id i = Hashtbl.find_opt registry i

let all () =
  Hashtbl.fold (fun _ c acc -> c :: acc) registry []
  |> List.sort (fun a b -> Int.compare a.id b.id)

(* Expansion of a possibly-ambiguous codon into concrete table indices. *)
let expand_codon codon =
  if String.length codon <> 3 then None
  else
    let expand c =
      match Nucleotide.of_char c with
      | None -> None
      | Some b -> Some (Nucleotide.expand b)
    in
    match expand codon.[0], expand codon.[1], expand codon.[2] with
    | Some xs, Some ys, Some zs ->
        let triplets =
          List.concat_map
            (fun x ->
              List.concat_map
                (fun y ->
                  List.map
                    (fun z ->
                      String.init 3 (fun i ->
                          Nucleotide.to_char (match i with 0 -> x | 1 -> y | _ -> z)))
                    zs)
                ys)
            xs
        in
        Some (List.filter_map codon_index triplets)
    | _ -> None

let translate_codon t codon =
  match codon_index codon with
  | Some i -> t.table.(i)
  | None -> (
      match expand_codon codon with
      | None | Some [] ->
          invalid_arg (Printf.sprintf "Genetic_code.translate_codon: %S" codon)
      | Some (first :: rest) ->
          let aa = t.table.(first) in
          if List.for_all (fun i -> Amino_acid.equal t.table.(i) aa) rest then aa
          else Amino_acid.Xaa)

let is_start_codon t codon =
  match codon_index codon with Some i -> t.starts.(i) | None -> false

let is_stop_codon t codon =
  match codon_index codon with
  | Some i -> Amino_acid.equal t.table.(i) Amino_acid.Stop
  | None -> false

let start_codons t =
  List.filter_map
    (fun i -> if t.starts.(i) then Some (codon_of_index i) else None)
    (List.init 64 Fun.id)

let stop_codons t =
  List.filter_map
    (fun i ->
      if Amino_acid.equal t.table.(i) Amino_acid.Stop then Some (codon_of_index i)
      else None)
    (List.init 64 Fun.id)

let back_translate t aa =
  List.filter_map
    (fun i -> if Amino_acid.equal t.table.(i) aa then Some (codon_of_index i) else None)
    (List.init 64 Fun.id)
