type t =
  | Point of int
  | Range of int * int
  | Complement of t
  | Join of t list

let point n =
  if n < 1 then invalid_arg "Location.point: coordinates are 1-based";
  Point n

let range lo hi =
  if lo < 1 || hi < lo then invalid_arg "Location.range: requires 1 <= lo <= hi";
  Range (lo, hi)

let complement t = Complement t

let join = function
  | [] -> invalid_arg "Location.join: empty"
  | [ single ] -> single
  | parts -> Join parts

let rec length = function
  | Point _ -> 1
  | Range (lo, hi) -> hi - lo + 1
  | Complement inner -> length inner
  | Join parts -> List.fold_left (fun acc p -> acc + length p) 0 parts

let rec span = function
  | Point n -> (n, n)
  | Range (lo, hi) -> (lo, hi)
  | Complement inner -> span inner
  | Join parts ->
      List.fold_left
        (fun (lo, hi) p ->
          let plo, phi = span p in
          (min lo plo, max hi phi))
        (max_int, min_int) parts

let is_reverse = function Complement _ -> true | Point _ | Range _ | Join _ -> false

let rec extract t seq =
  match t with
  | Point n -> Sequence.sub seq ~pos:(n - 1) ~len:1
  | Range (lo, hi) -> Sequence.sub seq ~pos:(lo - 1) ~len:(hi - lo + 1)
  | Complement inner -> Sequence.reverse_complement (extract inner seq)
  | Join parts -> Sequence.concat (List.map (fun p -> extract p seq) parts)

let rec shift off = function
  | Point n -> Point (n + off)
  | Range (lo, hi) -> Range (lo + off, hi + off)
  | Complement inner -> Complement (shift off inner)
  | Join parts -> Join (List.map (shift off) parts)

let rec to_string = function
  | Point n -> string_of_int n
  | Range (lo, hi) -> Printf.sprintf "%d..%d" lo hi
  | Complement inner -> Printf.sprintf "complement(%s)" (to_string inner)
  | Join parts -> Printf.sprintf "join(%s)" (String.concat "," (List.map to_string parts))

(* --------------------------------------------------------------- *)
(* Parser: a tiny recursive-descent parser over the GenBank syntax. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_partial_marker () =
    match peek () with Some ('<' | '>') -> advance () | _ -> ()
  in
  let parse_int () =
    skip_partial_marker ();
    let start = !pos in
    while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    int_of_string (String.sub s start (!pos - start))
  in
  let keyword_at kw =
    let k = String.length kw in
    !pos + k <= n && String.sub s !pos k = kw
  in
  let rec parse_loc () =
    if keyword_at "complement(" then begin
      pos := !pos + String.length "complement(";
      let inner = parse_loc () in
      expect ')';
      Complement inner
    end
    else if keyword_at "join(" then begin
      pos := !pos + String.length "join(";
      let parts = parse_list () in
      expect ')';
      join parts
    end
    else if keyword_at "order(" then begin
      (* GenBank "order" is treated as join for extraction purposes *)
      pos := !pos + String.length "order(";
      let parts = parse_list () in
      expect ')';
      join parts
    end
    else begin
      let lo = parse_int () in
      match peek () with
      | Some '.' when !pos + 1 < n && s.[!pos + 1] = '.' ->
          pos := !pos + 2;
          let hi = parse_int () in
          if lo < 1 || hi < lo then fail "empty or non-positive range" else Range (lo, hi)
      | _ -> if lo < 1 then fail "coordinates are 1-based" else Point lo
    end
  and parse_list () =
    let first = parse_loc () in
    match peek () with
    | Some ',' ->
        advance ();
        first :: parse_list ()
    | _ -> [ first ]
  in
  match
    let loc = parse_loc () in
    if !pos <> n then fail "trailing characters";
    loc
  with
  | loc -> Ok loc
  | exception Parse_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp ppf t = Format.pp_print_string ppf (to_string t)
