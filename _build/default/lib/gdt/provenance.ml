type t = {
  source : string;
  record_id : string;
  version : int;
  retrieved_at : float;
}

let make ?(version = 1) ?(retrieved_at = 0.) ~source ~record_id () =
  { source; record_id; version; retrieved_at }

let self_generated record_id = make ~source:"user" ~record_id ()

let is_user t = t.source = "user"
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let pp ppf t =
  Format.fprintf ppf "%s:%s.v%d" t.source t.record_id t.version
