(** Feature locations in the GenBank style.

    Locations describe where a feature (gene, CDS, exon, …) lies on a
    sequence: simple ranges, single points, strand complements and joins of
    several spans, exactly as written in GenBank flat files
    (e.g. [join(12..78,complement(134..202))]). Coordinates are 1-based and
    inclusive, matching the repository convention. *)

type t =
  | Point of int                      (** a single base, [n] *)
  | Range of int * int                (** [lo..hi], inclusive *)
  | Complement of t                   (** opposite strand *)
  | Join of t list                    (** ordered concatenation of spans *)

val point : int -> t
val range : int -> int -> t
(** [range lo hi]; raises [Invalid_argument] if [lo < 1] or [hi < lo]. *)

val complement : t -> t
val join : t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val length : t -> int
(** Total number of bases covered (joins sum their parts). *)

val span : t -> int * int
(** Minimal and maximal coordinate touched. *)

val is_reverse : t -> bool
(** True when the outermost interpretation reads the reverse strand. *)

val extract : t -> Sequence.t -> Sequence.t
(** Cut the located bases out of a sequence, reverse-complementing
    [Complement] parts, concatenating [Join] parts in order. Raises
    [Invalid_argument] when the location exceeds the sequence. *)

val shift : int -> t -> t
(** Add an offset to every coordinate. *)

val to_string : t -> string
(** GenBank textual syntax. *)

val of_string : string -> (t, string) result
(** Parse the GenBank syntax (ranges, points, [complement(...)],
    [join(...)]; partial-end markers [<] and [>] are accepted and
    discarded). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
