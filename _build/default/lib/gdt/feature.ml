type kind =
  | Source
  | Gene
  | Cds
  | Exon
  | Intron
  | Mrna
  | Promoter
  | Terminator
  | Misc of string

type t = {
  kind : kind;
  location : Location.t;
  qualifiers : (string * string) list;
}

let make ?(qualifiers = []) kind location = { kind; location; qualifiers }

let kind_of_string s =
  match String.lowercase_ascii s with
  | "source" -> Source
  | "gene" -> Gene
  | "cds" -> Cds
  | "exon" -> Exon
  | "intron" -> Intron
  | "mrna" -> Mrna
  | "promoter" -> Promoter
  | "terminator" -> Terminator
  | _ -> Misc s

let kind_to_string = function
  | Source -> "source"
  | Gene -> "gene"
  | Cds -> "CDS"
  | Exon -> "exon"
  | Intron -> "intron"
  | Mrna -> "mRNA"
  | Promoter -> "promoter"
  | Terminator -> "terminator"
  | Misc s -> s

let qualifier t key =
  List.assoc_opt key t.qualifiers

let qualifier_all t key =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) t.qualifiers

let with_qualifier t key value = { t with qualifiers = t.qualifiers @ [ (key, value) ] }

let name t =
  match qualifier t "gene" with
  | Some _ as r -> r
  | None -> (
      match qualifier t "locus_tag" with
      | Some _ as r -> r
      | None -> qualifier t "label")

let overlaps a b =
  let alo, ahi = Location.span a.location and blo, bhi = Location.span b.location in
  alo <= bhi && blo <= ahi

let equal (a : t) b = a = b

let pp ppf t =
  Format.fprintf ppf "%s %s" (kind_to_string t.kind) (Location.to_string t.location);
  List.iter (fun (k, v) -> Format.fprintf ppf " /%s=%S" k v) t.qualifiers
