(** Sequence features (annotations) in the GenBank feature-table style.

    A feature pairs a kind ([CDS], [gene], [exon], …) with a {!Location.t}
    and free-form qualifiers. Features are how the Unifying Database stores
    repository annotations and user annotations alike (paper section 5.1). *)

type kind =
  | Source
  | Gene
  | Cds
  | Exon
  | Intron
  | Mrna
  | Promoter
  | Terminator
  | Misc of string  (** anything else, by its feature-table key *)

type t = {
  kind : kind;
  location : Location.t;
  qualifiers : (string * string) list;  (** e.g. [("gene", "lacZ")] *)
}

val make : ?qualifiers:(string * string) list -> kind -> Location.t -> t

val kind_of_string : string -> kind
(** Maps GenBank feature keys (["CDS"], ["gene"], …) to kinds; unknown keys
    become [Misc]. *)

val kind_to_string : kind -> string

val qualifier : t -> string -> string option
(** First value of the named qualifier. *)

val qualifier_all : t -> string -> string list

val with_qualifier : t -> string -> string -> t
(** Append a qualifier. *)

val name : t -> string option
(** Conventional display name: the [gene], then [locus_tag], then [label]
    qualifier, whichever exists first. *)

val overlaps : t -> t -> bool
(** True when the coordinate spans of the two locations intersect. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
