(** Provenance of a genomic value: which repository it came from, under
    which accession, and when. The paper (C9, section 5) requires that data
    keep their origin so that conflicting values from different repositories
    can both be offered to the biologist. *)

type t = {
  source : string;      (** repository name, e.g. ["SynthBank"] *)
  record_id : string;   (** accession within the source *)
  version : int;        (** source record version *)
  retrieved_at : float; (** seconds since epoch when extracted *)
}

val make : ?version:int -> ?retrieved_at:float -> source:string -> record_id:string -> unit -> t

val self_generated : string -> t
(** Provenance for user-created data (paper B5/C13): source ["user"]. *)

val is_user : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
