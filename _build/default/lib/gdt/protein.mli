(** The [protein] genomic data type: a named amino-acid sequence with
    optional provenance. *)

type t = private {
  id : string;
  name : string;
  residues : Sequence.t;  (** alphabet [Protein] *)
  provenance : Provenance.t option;
}

val make :
  ?name:string -> ?provenance:Provenance.t -> id:string -> Sequence.t -> (t, string) result
(** The sequence must use the protein alphabet. *)

val make_exn : ?name:string -> ?provenance:Provenance.t -> id:string -> Sequence.t -> t

val length : t -> int

val molecular_weight : t -> float
(** Average molecular weight in daltons: sum of residue masses plus one
    water (18.01528 Da). Stops are ignored. *)

val hydropathy_profile : t -> window:int -> float array
(** Kyte–Doolittle sliding-window means; raises [Invalid_argument] when
    [window] is not positive and odd or exceeds the length. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
