lib/gdt/chromosome.ml: Feature Format List Location Option Printf Sequence
