lib/gdt/gene.mli: Format Genetic_code Provenance Sequence
