lib/gdt/sequence.mli: Amino_acid Format Nucleotide
