lib/gdt/transcript.mli: Format Genetic_code Sequence
