lib/gdt/sequence.ml: Amino_acid Array Bytes Char Format Hashtbl Int64 List Nucleotide Printf Stdlib String
