lib/gdt/amino_acid.mli: Format
