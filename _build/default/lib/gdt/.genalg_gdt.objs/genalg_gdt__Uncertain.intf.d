lib/gdt/uncertain.mli: Format Provenance
