lib/gdt/protein.mli: Format Provenance Sequence
