lib/gdt/amino_acid.ml: Char Format List Printf Stdlib String
