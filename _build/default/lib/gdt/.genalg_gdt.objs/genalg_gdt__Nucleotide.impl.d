lib/gdt/nucleotide.ml: Char Format List Printf Stdlib
