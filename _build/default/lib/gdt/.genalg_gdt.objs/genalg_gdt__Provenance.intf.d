lib/gdt/provenance.mli: Format
