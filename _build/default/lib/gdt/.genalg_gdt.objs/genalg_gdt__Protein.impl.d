lib/gdt/protein.ml: Amino_acid Array Format Option Provenance Sequence
