lib/gdt/feature.mli: Format Location
