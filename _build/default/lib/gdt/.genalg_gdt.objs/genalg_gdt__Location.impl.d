lib/gdt/location.ml: Format List Printf Sequence Stdlib String
