lib/gdt/nucleotide.mli: Format
