lib/gdt/provenance.ml: Format Stdlib
