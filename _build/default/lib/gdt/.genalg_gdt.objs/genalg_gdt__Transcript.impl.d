lib/gdt/transcript.ml: Format Genetic_code List Sequence
