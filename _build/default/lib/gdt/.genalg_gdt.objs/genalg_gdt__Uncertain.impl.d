lib/gdt/uncertain.ml: Float Format List Provenance
