lib/gdt/feature.ml: Format List Location String
