lib/gdt/genetic_code.mli: Amino_acid
