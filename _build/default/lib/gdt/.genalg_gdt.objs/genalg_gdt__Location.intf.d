lib/gdt/location.mli: Format Sequence
