lib/gdt/genome.mli: Chromosome Feature Format
