lib/gdt/genome.ml: Chromosome Feature Format List String
