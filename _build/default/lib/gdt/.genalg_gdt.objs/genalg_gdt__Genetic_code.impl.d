lib/gdt/genetic_code.ml: Amino_acid Array Fun Hashtbl Int List Nucleotide Printf String
