lib/gdt/chromosome.mli: Feature Format Sequence
