lib/gdt/gene.ml: Format Genetic_code List Option Printf Provenance Sequence
