(** In-memory B-trees keyed by {!Dtype.value}, mapping each key to the
    record ids holding it (secondary indexes; duplicates allowed). The
    classic CLRS structure with minimum degree 16. *)

type t

val create : unit -> t

val insert : t -> Dtype.value -> Heap.rid -> unit

val remove : t -> Dtype.value -> Heap.rid -> bool
(** Drop one (key, rid) posting; false when absent. The key stays in the
    tree with an empty posting list (lazy deletion). *)

val find : t -> Dtype.value -> Heap.rid list
(** Postings for an exact key, insertion order. *)

val range :
  ?lo:Dtype.value -> ?hi:Dtype.value ->
  ?lo_inclusive:bool -> ?hi_inclusive:bool ->
  t -> (Dtype.value * Heap.rid list) list
(** Keys in [lo, hi] (each bound optional, inclusive by default), in key
    order, with their postings. *)

val iter : (Dtype.value -> Heap.rid list -> unit) -> t -> unit
(** All keys in order (including lazily-emptied ones). *)

val cardinal : t -> int
(** Number of distinct keys with at least one posting. *)

val height : t -> int

val distinct_keys : t -> int
(** Number of keys present in the tree (postings may be empty). *)
