(** Relation schemas: ordered, named, typed columns. *)

type column = {
  name : string;
  dtype : Dtype.t;
  nullable : bool;
}

type t

val make : column list -> (t, string) result
(** Column names must be non-empty and distinct (case-insensitive). *)

val make_exn : column list -> t

val columns : t -> column list
val arity : t -> int

val column_index : t -> string -> int option
(** Case-insensitive lookup. *)

val column : t -> int -> column

val validate_row : t -> Dtype.value array -> (unit, string) result
(** Arity, type conformance and null admissibility. *)

val to_string : t -> string
(** ["(id int, seq dna, len int)"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
