(** Slotted pages.

    Fixed-size byte pages holding variable-length records behind a slot
    directory, the classic heap-file building block. Records are opaque
    byte strings (encoded rows); deletion leaves a tombstone slot and the
    space is reclaimed by {!compact}. *)

type t

val page_size : int
(** 8192 bytes. *)

val create : unit -> t

val insert : t -> bytes -> int option
(** Insert a record, returning its slot number, or [None] when the page
    has insufficient free space. Records longer than the page payload are
    rejected with [Invalid_argument]. *)

val get : t -> int -> bytes option
(** [None] for deleted or out-of-range slots. *)

val delete : t -> int -> bool
(** Tombstone a slot; false when it was already dead or out of range. *)

val update : t -> int -> bytes -> bool
(** Replace a record in place when the new payload fits in this page
    (possibly after compaction); false otherwise. *)

val slot_count : t -> int
(** Slots ever allocated (live + tombstoned). *)

val live_count : t -> int

val free_space : t -> int
(** Bytes available for a further insert (payload + slot entry). *)

val compact : t -> unit
(** Reclaim tombstoned space. Slot numbers of live records are stable. *)

val iter : (int -> bytes -> unit) -> t -> unit
(** Live records in slot order. *)

val to_bytes : t -> bytes
(** Serialize the page verbatim (page image). *)

val of_bytes : bytes -> (t, string) result
