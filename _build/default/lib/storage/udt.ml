type search_support = {
  index_text : bytes -> [ `Text of string | `Always_candidate ];
  matches : bytes -> pattern:string -> bool;
}

type udt = {
  type_name : string;
  validate : bytes -> bool;
  display : bytes -> string;
  search : search_support option;
}

type udf = {
  fn_name : string;
  arg_types : Dtype.t list;
  return_type : Dtype.t;
  code : Dtype.value list -> (Dtype.value, string) result;
}

type t = {
  udts : (string, udt) Hashtbl.t;
  udfs : (string, udf list ref) Hashtbl.t;
}

let create () = { udts = Hashtbl.create 16; udfs = Hashtbl.create 64 }

let key = String.lowercase_ascii

let register_type t udt =
  let k = key udt.type_name in
  if Hashtbl.mem t.udts k then
    Error (Printf.sprintf "UDT %s already registered" udt.type_name)
  else begin
    Hashtbl.add t.udts k udt;
    Ok ()
  end

let same_args a b =
  List.length a = List.length b && List.for_all2 ( = ) a b

let register_function t udf =
  let k = key udf.fn_name in
  match Hashtbl.find_opt t.udfs k with
  | None ->
      Hashtbl.add t.udfs k (ref [ udf ]);
      Ok ()
  | Some cell ->
      if List.exists (fun f -> same_args f.arg_types udf.arg_types) !cell then
        Error (Printf.sprintf "function %s with this rank already registered" udf.fn_name)
      else begin
        cell := udf :: !cell;
        Ok ()
      end

let find_type t name = Hashtbl.find_opt t.udts (key name)

let arg_matches ~param ~arg =
  param = arg || match param, arg with Dtype.TFloat, Dtype.TInt -> true | _ -> false

let resolve_function t name args =
  match Hashtbl.find_opt t.udfs (key name) with
  | None -> None
  | Some cell ->
      let exact = List.find_opt (fun f -> same_args f.arg_types args) !cell in
      (match exact with
      | Some _ as r -> r
      | None ->
          List.find_opt
            (fun f ->
              List.length f.arg_types = List.length args
              && List.for_all2 (fun param arg -> arg_matches ~param ~arg) f.arg_types args)
            !cell)

let functions t =
  Hashtbl.fold (fun _ cell acc -> !cell @ acc) t.udfs []
  |> List.sort (fun a b -> String.compare a.fn_name b.fn_name)

let types t =
  Hashtbl.fold (fun _ u acc -> u :: acc) t.udts []
  |> List.sort (fun a b -> String.compare a.type_name b.type_name)

let validate_value t = function
  | Dtype.Opaque (name, payload) -> (
      match find_type t name with
      | None -> Error (Printf.sprintf "unregistered UDT %s" name)
      | Some udt ->
          if udt.validate payload then Ok ()
          else Error (Printf.sprintf "malformed %s payload" name))
  | Dtype.Null | Dtype.Bool _ | Dtype.Int _ | Dtype.Float _ | Dtype.Str _ -> Ok ()

let display_value t = function
  | Dtype.Opaque (name, payload) as v -> (
      match find_type t name with
      | Some udt -> udt.display payload
      | None -> Dtype.value_to_display v)
  | v -> Dtype.value_to_display v
