type t =
  | TBool
  | TInt
  | TFloat
  | TString
  | TOpaque of string

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Opaque of string * bytes

let type_of_value = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TString
  | Opaque (name, _) -> Some (TOpaque name)

let conforms ty v =
  match ty, v with
  | _, Null -> true
  | TBool, Bool _ -> true
  | TInt, Int _ -> true
  | TFloat, (Float _ | Int _) -> true
  | TString, Str _ -> true
  | TOpaque name, Opaque (n, _) -> name = n
  | (TBool | TInt | TFloat | TString | TOpaque _), _ -> false

let to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"
  | TOpaque name -> name

let of_string s =
  match String.lowercase_ascii s with
  | "bool" | "boolean" -> Some TBool
  | "int" | "integer" -> Some TInt
  | "float" | "real" | "double" -> Some TFloat
  | "string" | "text" | "varchar" -> Some TString
  | "" -> None
  | other -> Some (TOpaque other)

let value_to_display = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Opaque (name, payload) -> Printf.sprintf "<%s:%d bytes>" name (Bytes.length payload)

let equal_value a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> x = y
  | Opaque (nx, px), Opaque (ny, py) -> nx = ny && Bytes.equal px py
  | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Opaque _ -> 4

let compare_value a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Opaque (nx, px), Opaque (ny, py) ->
      let c = String.compare nx ny in
      if c <> 0 then c else Bytes.compare px py
  | _ -> Int.compare (rank a) (rank b)

(* --------------------------------------------------------------- *)
(* Binary encoding: 1 tag byte, then a type-specific payload.       *)

let add_int64 buf i = Buffer.add_int64_le buf (Int64.of_int i)

let add_sized buf s =
  add_int64 buf (String.length s);
  Buffer.add_string buf s

let encode_value buf = function
  | Null -> Buffer.add_char buf '\000'
  | Bool b ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Int i ->
      Buffer.add_char buf '\002';
      add_int64 buf i
  | Float f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Str s ->
      Buffer.add_char buf '\004';
      add_sized buf s
  | Opaque (name, payload) ->
      Buffer.add_char buf '\005';
      add_sized buf name;
      add_int64 buf (Bytes.length payload);
      Buffer.add_bytes buf payload

let read_int64 buf off =
  if off + 8 > Bytes.length buf then invalid_arg "Dtype.decode_value: truncated";
  (Int64.to_int (Bytes.get_int64_le buf off), off + 8)

let read_sized buf off =
  let len, off = read_int64 buf off in
  if len < 0 || off + len > Bytes.length buf then
    invalid_arg "Dtype.decode_value: truncated string";
  (Bytes.sub_string buf off len, off + len)

let decode_value buf off =
  if off >= Bytes.length buf then invalid_arg "Dtype.decode_value: empty";
  match Bytes.get buf off with
  | '\000' -> (Null, off + 1)
  | '\001' ->
      if off + 2 > Bytes.length buf then invalid_arg "Dtype.decode_value: truncated";
      (Bool (Bytes.get buf (off + 1) <> '\000'), off + 2)
  | '\002' ->
      let i, off = read_int64 buf (off + 1) in
      (Int i, off)
  | '\003' ->
      if off + 9 > Bytes.length buf then invalid_arg "Dtype.decode_value: truncated";
      (Float (Int64.float_of_bits (Bytes.get_int64_le buf (off + 1))), off + 9)
  | '\004' ->
      let s, off = read_sized buf (off + 1) in
      (Str s, off)
  | '\005' ->
      let name, off = read_sized buf (off + 1) in
      let len, off = read_int64 buf off in
      if len < 0 || off + len > Bytes.length buf then
        invalid_arg "Dtype.decode_value: truncated opaque";
      (Opaque (name, Bytes.sub buf off len), off + len)
  | _ -> invalid_arg "Dtype.decode_value: unknown tag"

let encode_row row =
  let buf = Buffer.create 64 in
  add_int64 buf (Array.length row);
  Array.iter (encode_value buf) row;
  Buffer.to_bytes buf

let decode_row buf =
  let n, off = read_int64 buf 0 in
  (* every value takes at least one tag byte, so the arity cannot exceed
     the remaining payload — guards against huge corrupted headers *)
  if n < 0 || n > Bytes.length buf - off then
    invalid_arg "Dtype.decode_row: corrupt arity";
  let off = ref off in
  Array.init n (fun _ ->
      let v, next = decode_value buf !off in
      off := next;
      v)

let pp ppf ty = Format.pp_print_string ppf (to_string ty)
let pp_value ppf v = Format.pp_print_string ppf (value_to_display v)
