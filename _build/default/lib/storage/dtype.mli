(** Column types and runtime values of the Unifying Database's storage
    engine.

    The engine knows the usual scalar types plus {!Opaque} values — byte
    blobs of a named user-defined type whose "internal and mostly complex
    structure is unknown to the DBMS" (paper section 6.2). Genomic data
    types enter the database exclusively as opaque attribute values through
    the adapter. *)

type t =
  | TBool
  | TInt
  | TFloat
  | TString
  | TOpaque of string  (** UDT name, e.g. ["dna"] *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Opaque of string * bytes  (** UDT name and its packed payload *)

val type_of_value : value -> t option
(** [None] for [Null] (which belongs to every type). *)

val conforms : t -> value -> bool
(** Whether a value may be stored in a column of the type ([Null] always
    may; [Int] also conforms to [TFloat]). *)

val to_string : t -> string
val of_string : string -> t option

val value_to_display : value -> string
(** Rendering for result tables; opaque payloads print as
    [<udt:NN bytes>]. *)

val equal_value : value -> value -> bool
val compare_value : value -> value -> int
(** Total order used by indexes and ORDER BY: [Null] first, then by type;
    numeric values compare numerically across [Int]/[Float]. *)

val encode_value : Buffer.t -> value -> unit
(** Append a self-describing binary encoding. *)

val decode_value : bytes -> int -> value * int
(** [decode_value buf off] reads one value, returning it and the next
    offset. Raises [Invalid_argument] on corrupt input. *)

val encode_row : value array -> bytes
val decode_row : bytes -> value array

val pp : Format.formatter -> t -> unit
val pp_value : Format.formatter -> value -> unit
