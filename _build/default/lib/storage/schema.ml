type column = {
  name : string;
  dtype : Dtype.t;
  nullable : bool;
}

type t = { cols : column array }

let make cols =
  let names = List.map (fun c -> String.lowercase_ascii c.name) cols in
  if List.exists (fun n -> n = "") names then Error "empty column name"
  else if List.length (List.sort_uniq String.compare names) <> List.length names then
    Error "duplicate column names"
  else Ok { cols = Array.of_list cols }

let make_exn cols =
  match make cols with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schema.make_exn: " ^ msg)

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let column_index t name =
  let lname = String.lowercase_ascii name in
  let rec loop i =
    if i = Array.length t.cols then None
    else if String.lowercase_ascii t.cols.(i).name = lname then Some i
    else loop (i + 1)
  in
  loop 0

let column t i = t.cols.(i)

let validate_row t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "row arity %d does not match schema arity %d"
         (Array.length row) (arity t))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then begin
          let c = t.cols.(i) in
          match v with
          | Dtype.Null ->
              if not c.nullable then
                err := Some (Printf.sprintf "column %s is not nullable" c.name)
          | _ ->
              if not (Dtype.conforms c.dtype v) then
                err :=
                  Some
                    (Printf.sprintf "column %s expects %s, got %s" c.name
                       (Dtype.to_string c.dtype)
                       (Dtype.value_to_display v))
        end)
      row;
    match !err with None -> Ok () | Some msg -> Error msg
  end

let to_string t =
  Printf.sprintf "(%s)"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s %s%s" c.name (Dtype.to_string c.dtype)
              (if c.nullable then "" else " not null"))
          (columns t)))

let equal a b = columns a = columns b
let pp ppf t = Format.pp_print_string ppf (to_string t)
