lib/storage/udt.mli: Dtype
