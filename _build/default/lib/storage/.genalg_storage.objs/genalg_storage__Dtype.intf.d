lib/storage/dtype.mli: Buffer Format
