lib/storage/table.mli: Dtype Heap Schema Udt
