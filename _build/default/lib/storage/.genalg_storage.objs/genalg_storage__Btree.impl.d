lib/storage/btree.ml: Array Dtype Heap List
