lib/storage/page.mli:
