lib/storage/udt.ml: Dtype Hashtbl List Printf String
