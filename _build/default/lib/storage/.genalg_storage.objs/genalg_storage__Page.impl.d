lib/storage/page.ml: Array Bytes Int32 Printf
