lib/storage/text_index.ml: Hashtbl Heap List String Udt
