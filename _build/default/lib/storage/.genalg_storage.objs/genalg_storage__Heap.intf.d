lib/storage/heap.mli:
