lib/storage/database.mli: Dtype Heap Schema Table Udt
