lib/storage/dtype.ml: Array Bool Buffer Bytes Float Format Int Int64 Printf String
