lib/storage/heap.ml: Array Buffer Bytes Int64 Page
