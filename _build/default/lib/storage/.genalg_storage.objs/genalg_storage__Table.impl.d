lib/storage/table.ml: Array Btree Buffer Dtype Hashtbl Heap List Option Printf Schema String Text_index Udt
