lib/storage/btree.mli: Dtype Heap
