lib/storage/schema.ml: Array Dtype Format List Printf String
