lib/storage/text_index.mli: Heap Udt
