lib/storage/database.ml: Array Buffer Bytes Dtype Fun Int64 List Option Printf Schema String Table Udt
