(** User-defined (opaque) types and user-defined functions — the DBMS
    extensibility mechanism of paper section 6.2.

    An opaque UDT gives the database a new attribute type whose payload is
    a byte blob only the registering package understands; user-defined
    functions over scalar and opaque values become usable "anywhere
    built-in operators can be used" (section 6.3) once the query layer
    consults this registry. The registry is the DBMS half of the
    "DBMS-specific adapter"; the GenAlg half lives in the adapter
    library. *)

(** How a user-defined index structure may search payloads of a type —
    the hook behind the paper's section 6.5 requirement that "the DBMS
    must offer a mechanism to integrate these user-defined index
    structures". The registering package supplies both the canonical
    index text and the match semantics; the engine supplies the inverted
    index itself (see {!Table.create_genomic_index}). *)
type search_support = {
  index_text : bytes -> [ `Text of string | `Always_candidate ];
      (** canonical letters for k-mer indexing, or [`Always_candidate]
          for payloads whose matching cannot be captured by exact k-mers
          (e.g. sequences containing ambiguity codes) *)
  matches : bytes -> pattern:string -> bool;
      (** authoritative containment check; must agree with the type's
          scalar [contains] function *)
}

type udt = {
  type_name : string;
  validate : bytes -> bool;          (** payload well-formedness check *)
  display : bytes -> string;         (** rendering for query results *)
  search : search_support option;    (** substring-index integration hook *)
}

type udf = {
  fn_name : string;
  arg_types : Dtype.t list;
  return_type : Dtype.t;
  code : Dtype.value list -> (Dtype.value, string) result;
}

type t

val create : unit -> t

val register_type : t -> udt -> (unit, string) result
(** Fails on duplicate type names (case-insensitive). *)

val register_function : t -> udf -> (unit, string) result
(** Functions may be overloaded on argument types. *)

val find_type : t -> string -> udt option

val resolve_function : t -> string -> Dtype.t list -> udf option
(** Exact overload resolution, with [TInt] widening to [TFloat]. *)

val functions : t -> udf list
val types : t -> udt list

val validate_value : t -> Dtype.value -> (unit, string) result
(** For [Opaque] values: the type must be registered and the payload must
    validate. Other values always pass. *)

val display_value : t -> Dtype.value -> string
(** Like {!Dtype.value_to_display}, but opaque payloads of registered
    types render through their [display] function. *)
