(** The DBMS-specific adapter (paper Figure 3 and section 6.2).

    "The adapter … is the only component that has knowledge about the
    types and operations of the Genomics Algebra as well as how they are
    implemented and stored in the DBMS." It (1) registers every storable
    GDT as an opaque UDT with the database, (2) converts between algebra
    values and database values, and (3) exposes every eligible algebra
    operator as a user-defined function so SQL can call it "anywhere
    built-in operators can be used" (section 6.3). *)

val storable_udts : string list
(** UDT names the adapter registers: ["dna"; "rna"; "proteinseq"; "gene";
    "primarytranscript"; "mrna"; "protein"]. *)

val attach : Genalg_storage.Database.t -> Genalg_core.Signature.t -> unit
(** Register the UDTs and all eligible operators of the signature as UDFs
    on the database. Operators whose rank mentions constructed sorts
    (lists, uncertain values) are algebra-only and skipped. Idempotent on
    types (re-registration errors are ignored). *)

val dtype_of_sort : Genalg_core.Sort.t -> Genalg_storage.Dtype.t option
(** [None] for constructed sorts and the sorts without a storable codec
    (nucleotide, amino acid, chromosome, genome). *)

val to_db : Genalg_core.Value.t -> (Genalg_storage.Dtype.value, string) result
(** Algebra value → database value (opaque payloads for GDTs). *)

val of_db : Genalg_storage.Dtype.value -> (Genalg_core.Value.t, string) result
(** Database value → algebra value. [Null] and unregistered opaque names
    are errors. *)
