(** Binary codecs packing GDT values into opaque UDT payloads.

    Section 4.4 requires representations "embedded into compact storage
    areas which can be efficiently transferred between main memory and
    disk"; these codecs are those storage areas for the composite GDTs
    (sequences already pack themselves via {!Genalg_gdt.Sequence.to_bytes}). *)

open Genalg_gdt

val encode_gene : Gene.t -> bytes
val decode_gene : bytes -> (Gene.t, string) result

val encode_protein : Protein.t -> bytes
val decode_protein : bytes -> (Protein.t, string) result

val encode_primary : Transcript.primary -> bytes
val decode_primary : bytes -> (Transcript.primary, string) result

val encode_mrna : Transcript.mrna -> bytes
val decode_mrna : bytes -> (Transcript.mrna, string) result
