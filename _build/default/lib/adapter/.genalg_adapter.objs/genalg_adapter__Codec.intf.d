lib/adapter/codec.mli: Genalg_gdt Gene Protein Transcript
