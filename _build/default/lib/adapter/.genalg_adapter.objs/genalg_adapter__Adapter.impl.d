lib/adapter/adapter.ml: Codec Format Genalg_core Genalg_gdt Genalg_storage Gene List Option Printf Protein Result Sequence Transcript
