lib/adapter/codec.ml: Buffer Bytes Genalg_gdt Gene Genetic_code Int64 List Printf Protein Result Sequence String Transcript
