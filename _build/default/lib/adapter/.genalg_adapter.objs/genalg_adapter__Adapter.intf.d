lib/adapter/adapter.mli: Genalg_core Genalg_storage
