open Genalg_gdt

let add_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let add_sized buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_seq buf seq =
  let b = Sequence.to_bytes seq in
  add_int buf (Bytes.length b);
  Buffer.add_bytes buf b

exception Corrupt of string

type reader = { data : bytes; mutable pos : int }

let need r n = if r.pos + n > Bytes.length r.data then raise (Corrupt "truncated")

let read_int r =
  need r 8;
  let v = Int64.to_int (Bytes.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  if v < 0 then raise (Corrupt "negative length");
  v

let read_sized r =
  let n = read_int r in
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_seq r =
  let n = read_int r in
  need r n;
  let b = Bytes.sub r.data r.pos n in
  r.pos <- r.pos + n;
  match Sequence.of_bytes b with
  | Ok s -> s
  | Error msg -> raise (Corrupt msg)

let with_reader data f =
  let r = { data; pos = 0 } in
  match f r with
  | v ->
      if r.pos <> Bytes.length data then Error "trailing bytes"
      else Ok v
  | exception Corrupt msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let read_exons r =
  let n = read_int r in
  List.init n (fun _ ->
      let off = read_int r in
      let len = read_int r in
      (off, len))

let add_exons buf exons =
  add_int buf (List.length exons);
  List.iter
    (fun (off, len) ->
      add_int buf off;
      add_int buf len)
    exons

let read_code r =
  let id = read_int r in
  match Genetic_code.by_id id with
  | Some c -> c
  | None -> raise (Corrupt (Printf.sprintf "unknown genetic code %d" id))

(* ---- gene ------------------------------------------------------- *)

let encode_gene (g : Gene.t) =
  let buf = Buffer.create 128 in
  add_sized buf g.Gene.id;
  add_sized buf g.Gene.name;
  add_seq buf g.Gene.dna;
  add_exons buf g.Gene.exons;
  add_int buf (Genetic_code.id g.Gene.code);
  Buffer.to_bytes buf

let decode_gene data =
  Result.join
    (with_reader data (fun r ->
         let id = read_sized r in
         let name = read_sized r in
         let dna = read_seq r in
         let exons = read_exons r in
         let code = read_code r in
         Gene.make ~name ~exons ~code ~id dna))

(* ---- protein ----------------------------------------------------- *)

let encode_protein (p : Protein.t) =
  let buf = Buffer.create 128 in
  add_sized buf p.Protein.id;
  add_sized buf p.Protein.name;
  add_seq buf p.Protein.residues;
  Buffer.to_bytes buf

let decode_protein data =
  Result.join
    (with_reader data (fun r ->
         let id = read_sized r in
         let name = read_sized r in
         let residues = read_seq r in
         Protein.make ~name ~id residues))

(* ---- transcripts -------------------------------------------------- *)

let encode_primary (p : Transcript.primary) =
  let buf = Buffer.create 128 in
  add_sized buf p.Transcript.gene_id;
  add_seq buf p.Transcript.rna;
  add_exons buf p.Transcript.exons;
  add_int buf (Genetic_code.id p.Transcript.code);
  Buffer.to_bytes buf

let decode_primary data =
  with_reader data (fun r ->
      let gene_id = read_sized r in
      let rna = read_seq r in
      let exons = read_exons r in
      let code = read_code r in
      Transcript.primary ~gene_id ~exons ~code rna)

let encode_mrna (m : Transcript.mrna) =
  let buf = Buffer.create 128 in
  add_sized buf m.Transcript.gene_id;
  add_seq buf m.Transcript.rna;
  add_int buf (Genetic_code.id m.Transcript.code);
  Buffer.to_bytes buf

let decode_mrna data =
  with_reader data (fun r ->
      let gene_id = read_sized r in
      let rna = read_seq r in
      let code = read_code r in
      Transcript.mrna ~gene_id ~code rna)
