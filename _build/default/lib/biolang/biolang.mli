(** The biological query language (paper section 6.4).

    "Biologists frequently dislike SQL … the issue is here to design such
    a biological query language based on the biologists' needs. A query
    formulated in this query language will then be mapped to the extended
    SQL of the Unifying Database."

    The language is English-like and vocabulary-driven: entity and
    attribute phrases resolve through the {!Genalg_core.Ontology}, so
    synonyms work (["messenger rna"], ["gc fraction"], …). Examples:

    {v
    find sequences where organism is 'Synthetica primus'
    find sequences where sequence contains 'ATTGCCATA' and gc content above 0.5
    count genes where exon count at least 3
    find sequences where sequence resembles 'ACGT...' at least 0.8 limit 10
    show sequences
    v}

    Compilation is purely syntactic: the output is an extended-SQL
    {!Genalg_sqlx.Ast.stmt} executed by {!Genalg_sqlx.Exec} like any
    hand-written query (experiment E9 measures the overhead). *)

val compile :
  ?ontology:Genalg_core.Ontology.t ->
  string ->
  (Genalg_sqlx.Ast.stmt, string) result
(** Translate a biological query into extended SQL. *)

val compile_to_sql :
  ?ontology:Genalg_core.Ontology.t -> string -> (string, string) result
(** {!compile} followed by pretty-printing — lets a user see the SQL their
    question became. *)

val run :
  ?ontology:Genalg_core.Ontology.t ->
  Genalg_storage.Database.t ->
  actor:string ->
  string ->
  (Genalg_sqlx.Exec.outcome, string) result

type output_format = Table | Fasta | Genalgxml

val split_output_clause : string -> string * output_format
(** Strip a trailing ["as fasta"] / ["as xml"] / ["as table"] clause —
    the textual stand-in for the paper's "graphical output description
    language whose commands can be combined with expressions of the
    biological query language" (section 6.4). Default {!Table}. *)

val run_rendered :
  ?ontology:Genalg_core.Ontology.t ->
  Genalg_storage.Database.t ->
  actor:string ->
  string ->
  (string, string) result
(** {!run} plus rendering according to the query's output clause:
    [Table] is the usual ASCII table; [Fasta] renders rows that carry an
    accession-like string column and a sequence column as FASTA records;
    [Genalgxml] wraps every sequence value of the result in a GenAlgXML
    list document. *)

val vocabulary : unit -> (string * string) list
(** The attribute phrases the language understands and the SQL each maps
    to, for documentation and the CLI's help. *)
