lib/biolang/biolang.ml: Array Buffer Genalg_adapter Genalg_core Genalg_formats Genalg_gdt Genalg_sqlx Genalg_storage Genalg_xml List Option Printf Result String
