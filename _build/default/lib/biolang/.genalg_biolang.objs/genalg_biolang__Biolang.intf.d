lib/biolang/biolang.mli: Genalg_core Genalg_sqlx Genalg_storage
