module Ast = Genalg_sqlx.Ast
module D = Genalg_storage.Dtype
module Ontology = Genalg_core.Ontology

(* ------------------------------------------------------------------ *)
(* Tokenizer: words, numbers, quoted strings                           *)

type token =
  | Word of string     (* lower-cased *)
  | Number of float * bool (* value, was-integer *)
  | Quoted of string

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let error = ref None in
  while !error = None && !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ',' then incr i
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = quote then begin
          closed := true;
          incr i
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if !closed then tokens := Quoted (Buffer.contents buf) :: !tokens
      else error := Some "unterminated quoted string"
    end
    else if (c >= '0' && c <= '9') || (c = '.' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      let is_int = ref true in
      while
        !i < n
        && ((input.[!i] >= '0' && input.[!i] <= '9') || input.[!i] = '.')
      do
        if input.[!i] = '.' then is_int := false;
        incr i
      done;
      match float_of_string_opt (String.sub input start (!i - start)) with
      | Some v -> tokens := Number (v, !is_int) :: !tokens
      | None -> error := Some "malformed number"
    end
    else begin
      let start = !i in
      while
        !i < n
        && not
             (List.mem input.[!i] [ ' '; '\t'; '\n'; '\r'; ','; '\''; '"' ])
      do
        incr i
      done;
      tokens := Word (String.lowercase_ascii (String.sub input start (!i - start))) :: !tokens
    end
  done;
  match !error with Some msg -> Error msg | None -> Ok (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                          *)

(* entity phrase -> (table, sequence column for contains/resembles) *)
let entities =
  [
    ([ "sequences" ], ("sequences", Some "seq"));
    ([ "sequence"; "records" ], ("sequences", Some "seq"));
    ([ "records" ], ("sequences", Some "seq"));
    ([ "entries" ], ("sequences", Some "seq"));
    ([ "genes" ], ("genes", None));
    ([ "gene" ], ("genes", None));
    ([ "loci" ], ("genes", None));
    ([ "conflicts" ], ("conflicts", Some "seq"));
    ([ "proteins" ], ("proteins", None));
    ([ "protein" ], ("proteins", None));
    ([ "polypeptides" ], ("proteins", None));
    ([ "history" ], ("history", Some "seq"));
    ([ "archived"; "records" ], ("history", Some "seq"));
  ]

(* attribute phrase -> SQL expression builder (given the current table) *)
type attr = {
  phrase : string list;
  tables : string list; (* applicable tables; [] = all *)
  expr : Ast.expr;
  doc : string;
}

let col c = Ast.Col (None, c)

let attributes =
  [
    { phrase = [ "organism" ]; tables = []; expr = col "organism"; doc = "organism" };
    { phrase = [ "species" ]; tables = []; expr = col "organism"; doc = "organism" };
    { phrase = [ "accession" ]; tables = []; expr = col "accession"; doc = "accession" };
    { phrase = [ "source" ]; tables = [ "sequences"; "conflicts" ]; expr = col "source"; doc = "source" };
    { phrase = [ "definition" ]; tables = [ "sequences" ]; expr = col "definition"; doc = "definition" };
    { phrase = [ "description" ]; tables = [ "sequences" ]; expr = col "definition"; doc = "definition" };
    { phrase = [ "length" ]; tables = []; expr = col "length"; doc = "length" };
    { phrase = [ "size" ]; tables = []; expr = col "length"; doc = "length" };
    { phrase = [ "gc"; "content" ]; tables = [ "sequences" ]; expr = col "gc"; doc = "gc" };
    { phrase = [ "gc"; "fraction" ]; tables = [ "sequences" ]; expr = col "gc"; doc = "gc" };
    { phrase = [ "gc" ]; tables = [ "sequences" ]; expr = col "gc"; doc = "gc" };
    { phrase = [ "sequence" ]; tables = [ "sequences"; "conflicts" ]; expr = col "seq"; doc = "seq" };
    { phrase = [ "dna" ]; tables = [ "sequences"; "conflicts" ]; expr = col "seq"; doc = "seq" };
    { phrase = [ "exon"; "count" ]; tables = [ "genes" ]; expr = col "exon_count"; doc = "exon_count" };
    { phrase = [ "exons" ]; tables = [ "genes" ]; expr = col "exon_count"; doc = "exon_count" };
    { phrase = [ "name" ]; tables = [ "genes"; "proteins" ]; expr = col "id"; doc = "id" };
    { phrase = [ "id" ]; tables = [ "genes"; "proteins" ]; expr = col "id"; doc = "id" };
    { phrase = [ "version" ]; tables = [ "sequences" ]; expr = col "version"; doc = "version" };
    { phrase = [ "consistent" ]; tables = [ "sequences" ]; expr = col "consistent"; doc = "consistent" };
    { phrase = [ "confidence" ]; tables = [ "conflicts" ]; expr = col "confidence"; doc = "confidence" };
    { phrase = [ "molecular"; "weight" ]; tables = [ "proteins" ]; expr = col "weight"; doc = "weight" };
    { phrase = [ "weight" ]; tables = [ "proteins" ]; expr = col "weight"; doc = "weight" };
    { phrase = [ "mass" ]; tables = [ "proteins" ]; expr = col "weight"; doc = "weight" };
    { phrase = [ "replaced"; "at" ]; tables = [ "history" ]; expr = col "replaced_at"; doc = "replaced_at" };
  ]

let vocabulary () =
  List.map (fun a -> (String.concat " " a.phrase, a.doc)) attributes

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Err of string

let fail fmt = Printf.ksprintf (fun m -> raise (Err m)) fmt

let match_attr ~table words =
  (* longest matching attribute phrase applicable to [table] *)
  let applicable =
    List.filter (fun a -> a.tables = [] || List.mem table a.tables) attributes
  in
  let rec prefix_matches phrase words =
    match phrase, words with
    | [], _ -> true
    | p :: ps, w :: ws -> p = w && prefix_matches ps ws
    | _ :: _, [] -> false
  in
  let best =
    List.fold_left
      (fun acc a ->
        if prefix_matches a.phrase words then
          match acc with
          | Some b when List.length b.phrase >= List.length a.phrase -> acc
          | _ -> Some a
        else acc)
      None applicable
  in
  match best with
  | Some a ->
      let rec drop n l = if n = 0 then l else match l with _ :: t -> drop (n - 1) t | [] -> [] in
      Some (a, drop (List.length a.phrase) words)
  | None -> None

let value_of_token = function
  | Quoted s -> Ast.Lit (D.Str s)
  | Number (v, true) -> Ast.Lit (D.Int (int_of_float v))
  | Number (v, false) -> Ast.Lit (D.Float v)
  | Word "true" -> Ast.Lit (D.Bool true)
  | Word "false" -> Ast.Lit (D.Bool false)
  | Word w -> Ast.Lit (D.Str w)

let rec words_of tokens =
  match tokens with
  | Word w :: rest -> w :: words_of rest
  | _ -> []

let parse_condition ~table ~seq_column tokens =
  (* tokens start at the attribute phrase *)
  let word_prefix = words_of tokens in
  match match_attr ~table word_prefix with
  | None ->
      fail "unknown attribute near %s"
        (match word_prefix with w :: _ -> w | [] -> "<end>")
  | Some (attr, _) ->
      let rec drop n l =
        if n = 0 then l else match l with _ :: t -> drop (n - 1) t | [] -> []
      in
      let rest = drop (List.length attr.phrase) tokens in
      let negated, rest =
        match rest with Word "not" :: r -> (true, r) | r -> (false, r)
      in
      let finish expr = if negated then Ast.Not expr else expr in
      (match rest with
      | Word "contains" :: v :: rest ->
          (* over a sequence column this is the genomic contains();
             over a text column it is a substring (LIKE) match *)
          if attr.doc = "seq" then begin
            let pattern =
              match v with
              | Quoted s | Word s -> String.uppercase_ascii s
              | Number _ -> fail "contains expects a sequence pattern"
            in
            let target =
              match seq_column with Some c -> col c | None -> attr.expr
            in
            (finish (Ast.Fn ("contains", [ target; Ast.Lit (D.Str pattern) ])), rest)
          end
          else begin
            let pattern =
              match v with
              | Quoted s | Word s -> s
              | Number _ -> fail "contains expects text"
            in
            ( finish
                (Ast.Binop (Ast.Like, attr.expr, Ast.Lit (D.Str ("%" ^ pattern ^ "%")))),
              rest )
          end
      | Word "resembles" :: v :: rest ->
          let pattern =
            match v with
            | Quoted s | Word s -> String.uppercase_ascii s
            | Number _ -> fail "resembles expects a sequence"
          in
          let threshold, rest =
            match rest with
            | Word "at" :: Word "least" :: Number (f, _) :: r -> (f, r)
            | r -> (0.5, r)
          in
          ( finish
              (Ast.Binop
                 ( Ast.Ge,
                   Ast.Fn
                     ( "resembles",
                       [ attr.expr; Ast.Fn ("dna", [ Ast.Lit (D.Str pattern) ]) ] ),
                   Ast.Lit (D.Float threshold) )),
            rest )
      | Word "is" :: v :: rest | Word "equals" :: v :: rest | Word "=" :: v :: rest
        ->
          (finish (Ast.Binop (Ast.Eq, attr.expr, value_of_token v)), rest)
      | Word "between" :: lo :: Word "and" :: hi :: rest ->
          ( finish
              (Ast.Binop
                 ( Ast.And,
                   Ast.Binop (Ast.Ge, attr.expr, value_of_token lo),
                   Ast.Binop (Ast.Le, attr.expr, value_of_token hi) )),
            rest )
      | Word "at" :: Word "least" :: v :: rest ->
          (finish (Ast.Binop (Ast.Ge, attr.expr, value_of_token v)), rest)
      | Word "at" :: Word "most" :: v :: rest ->
          (finish (Ast.Binop (Ast.Le, attr.expr, value_of_token v)), rest)
      | Word "above" :: v :: rest
      | Word "over" :: v :: rest
      | Word "greater" :: Word "than" :: v :: rest
      | Word "more" :: Word "than" :: v :: rest ->
          (finish (Ast.Binop (Ast.Gt, attr.expr, value_of_token v)), rest)
      | Word "below" :: v :: rest
      | Word "under" :: v :: rest
      | Word "less" :: Word "than" :: v :: rest
      | Word "fewer" :: Word "than" :: v :: rest ->
          (finish (Ast.Binop (Ast.Lt, attr.expr, value_of_token v)), rest)
      | (Quoted _ as v) :: rest | (Number _ as v) :: rest ->
          (* "organism 'X'" shorthand *)
          (finish (Ast.Binop (Ast.Eq, attr.expr, value_of_token v)), rest)
      | _ -> fail "expected a relation after %s" (String.concat " " attr.phrase))

(* Map ontology sorts to warehouse tables, so synonyms like "messenger
   rna" or "locus" resolve even without an explicit entity phrase. *)
let table_of_sort = function
  | Genalg_core.Sort.Gene -> Some ("genes", None)
  | Genalg_core.Sort.Protein | Genalg_core.Sort.Protein_seq -> Some ("proteins", None)
  | Genalg_core.Sort.Dna | Genalg_core.Sort.Rna | Genalg_core.Sort.Mrna
  | Genalg_core.Sort.Primary_transcript | Genalg_core.Sort.Chromosome
  | Genalg_core.Sort.Genome ->
      Some ("sequences", Some "seq")
  | _ -> None

let singular w =
  if String.length w > 1 && w.[String.length w - 1] = 's' then
    String.sub w 0 (String.length w - 1)
  else w

let parse_entity ontology tokens =
  let word_prefix = words_of tokens in
  let rec prefix_matches phrase words =
    match phrase, words with
    | [], _ -> true
    | p :: ps, w :: ws -> p = w && prefix_matches ps ws
    | _ :: _, [] -> false
  in
  let best =
    List.fold_left
      (fun acc (phrase, target) ->
        if prefix_matches phrase word_prefix then
          match acc with
          | Some (p, _) when List.length p >= List.length phrase -> acc
          | _ -> Some (phrase, target)
        else acc)
      None entities
  in
  match best with
  | Some (phrase, (table, seq_col)) ->
      let rec drop n l =
        if n = 0 then l else match l with _ :: t -> drop (n - 1) t | [] -> []
      in
      (table, seq_col, drop (List.length phrase) tokens)
  | None -> (
      (* fall back to the ontology: try 1- and 2-word phrases, singular
         and as written *)
      let candidates =
        match word_prefix with
        | w1 :: w2 :: _ -> [ (w1 ^ " " ^ w2, 2); (w1, 1); (singular w1, 1) ]
        | [ w1 ] -> [ (w1, 1); (singular w1, 1) ]
        | [] -> []
      in
      let resolved =
        List.find_map
          (fun (phrase, consumed) ->
            match Ontology.resolve_sort ontology phrase with
            | Some sort ->
                Option.map (fun (t, c) -> (t, c, consumed)) (table_of_sort sort)
            | None -> None)
          candidates
      in
      match resolved with
      | Some (table, seq_col, consumed) ->
          let rec drop n l =
            if n = 0 then l else match l with _ :: t -> drop (n - 1) t | [] -> []
          in
          (table, seq_col, drop consumed tokens)
      | None ->
          fail "unknown entity near %s"
            (match word_prefix with w :: _ -> w | [] -> "<end>"))

let compile_tokens ontology tokens =
  let verb, tokens =
    match tokens with
    | Word ("find" | "show" | "list" | "get") :: rest -> (`Find, rest)
    | Word ("count" | "how") :: rest -> (
        match rest with
        | Word "many" :: r -> (`Count, r)
        | r -> (`Count, r))
    | _ -> fail "queries start with find, show, list, count or how many"
  in
  let table, seq_col, tokens = parse_entity ontology tokens in
  let where, tokens =
    match tokens with
    | Word ("where" | "with" | "whose") :: rest ->
        let rec conds acc rest =
          let c, rest = parse_condition ~table ~seq_column:seq_col rest in
          let acc =
            match acc with None -> Some c | Some prev -> Some (Ast.Binop (Ast.And, prev, c))
          in
          match rest with
          | Word "and" :: r -> conds acc r
          | _ -> (acc, rest)
        in
        conds None rest
    | rest -> (None, rest)
  in
  let order_by, tokens =
    match tokens with
    | Word "sorted" :: Word "by" :: rest
    | Word "ordered" :: Word "by" :: rest
    | Word "order" :: Word "by" :: rest -> (
        let word_prefix = words_of rest in
        match match_attr ~table word_prefix with
        | None ->
            fail "unknown sort attribute near %s"
              (match word_prefix with w :: _ -> w | [] -> "<end>")
        | Some (attr, _) ->
            let rec drop n l =
              if n = 0 then l else match l with _ :: t -> drop (n - 1) t | [] -> []
            in
            let rest = drop (List.length attr.phrase) rest in
            let ascending, rest =
              match rest with
              | Word ("descending" | "desc") :: r -> (false, r)
              | Word ("ascending" | "asc") :: r -> (true, r)
              | r -> (true, r)
            in
            ([ { Ast.key = attr.expr; ascending } ], rest))
    | rest -> ([], rest)
  in
  let limit, tokens =
    match tokens with
    | Word "limit" :: Number (v, true) :: rest -> (Some (int_of_float v), rest)
    | rest -> (None, rest)
  in
  (match tokens with
  | [] -> ()
  | Word w :: _ -> fail "trailing input near %s" w
  | Quoted s :: _ -> fail "trailing input near '%s'" s
  | Number (v, _) :: _ -> fail "trailing input near %g" v);
  let projection =
    match verb with
    | `Find -> Ast.Star
    | `Count -> Ast.Exprs [ (Ast.Count_star, Some "count") ]
  in
  Ast.Select
    {
      projection;
      from = [ (table, table) ];
      where;
      group_by = [];
      having = None;
      order_by;
      limit;
    }

let compile ?ontology input =
  let ontology =
    match ontology with Some o -> o | None -> Ontology.default ()
  in
  match tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> (
      match compile_tokens ontology tokens with
      | stmt -> Ok stmt
      | exception Err msg -> Error msg)

let compile_to_sql ?ontology input =
  Result.map Ast.stmt_to_string (compile ?ontology input)

let run ?ontology db ~actor input =
  match compile ?ontology input with
  | Error msg -> Error msg
  | Ok stmt -> Genalg_sqlx.Exec.run db ~actor stmt

(* ------------------------------------------------------------------ *)
(* Output formats: the paper's "output description language" (6.4)     *)

type output_format = Table | Fasta | Genalgxml

let split_output_clause input =
  let lower = String.lowercase_ascii (String.trim input) in
  let strip suffix =
    let n = String.length lower and m = String.length suffix in
    if n >= m && String.sub lower (n - m) m = suffix then
      Some (String.sub (String.trim input) 0 (n - m))
    else None
  in
  match strip "as fasta" with
  | Some head -> (head, Fasta)
  | None -> (
      match strip "as xml" with
      | Some head -> (head, Genalgxml)
      | None -> (
          match strip "as genalgxml" with
          | Some head -> (head, Genalgxml)
          | None -> (
              match strip "as table" with
              | Some head -> (head, Table)
              | None -> (input, Table))))

let sequence_of_db_value v =
  match Genalg_adapter.Adapter.of_db v with
  | Ok (Genalg_core.Value.VDna s)
  | Ok (Genalg_core.Value.VRna s)
  | Ok (Genalg_core.Value.VProtein_seq s) ->
      Some s
  | Ok (Genalg_core.Value.VProtein p) -> Some p.Genalg_gdt.Protein.residues
  | Ok (Genalg_core.Value.VGene g) -> Some g.Genalg_gdt.Gene.dna
  | _ -> None

let render_fasta (rs : Genalg_sqlx.Exec.result_set) =
  let records =
    List.filter_map
      (fun row ->
        (* first string cell names the record, first sequence cell is the
           body *)
        let cells = Array.to_list row in
        let name =
          List.find_map
            (function Genalg_storage.Dtype.Str s -> Some s | _ -> None)
            cells
        in
        let seq = List.find_map sequence_of_db_value cells in
        match name, seq with
        | Some id, Some sequence ->
            Some { Genalg_formats.Fasta.id; description = ""; sequence }
        | _ -> None)
      rs.Genalg_sqlx.Exec.rows
  in
  if records = [] then Error "no (name, sequence) columns to render as FASTA"
  else Ok (Genalg_formats.Fasta.print records)

let render_xml (rs : Genalg_sqlx.Exec.result_set) =
  let values =
    List.concat_map
      (fun row -> List.filter_map sequence_of_db_value (Array.to_list row))
      rs.Genalg_sqlx.Exec.rows
  in
  match values with
  | [] -> Error "no sequence values to render as GenAlgXML"
  | first :: _ ->
      let sort =
        match Genalg_gdt.Sequence.alphabet first with
        | Genalg_gdt.Sequence.Dna -> Genalg_core.Sort.Dna
        | Genalg_gdt.Sequence.Rna -> Genalg_core.Sort.Rna
        | Genalg_gdt.Sequence.Protein -> Genalg_core.Sort.Protein_seq
      in
      let same_sort s =
        Genalg_gdt.Sequence.alphabet s = Genalg_gdt.Sequence.alphabet first
      in
      let wrap s =
        match Genalg_gdt.Sequence.alphabet s with
        | Genalg_gdt.Sequence.Dna -> Genalg_core.Value.VDna s
        | Genalg_gdt.Sequence.Rna -> Genalg_core.Value.VRna s
        | Genalg_gdt.Sequence.Protein -> Genalg_core.Value.VProtein_seq s
      in
      Ok
        (Genalg_xml.Genalgxml.to_string
           (Genalg_core.Value.vlist sort
              (List.map wrap (List.filter same_sort values))))

let run_rendered ?ontology db ~actor input =
  let head, format = split_output_clause input in
  match run ?ontology db ~actor head with
  | Error _ as e -> e
  | Ok (Genalg_sqlx.Exec.Affected n) -> Ok (Printf.sprintf "(%d rows affected)" n)
  | Ok Genalg_sqlx.Exec.Executed -> Ok "ok"
  | Ok (Genalg_sqlx.Exec.Rows rs) -> (
      match format with
      | Table -> Ok (Genalg_sqlx.Exec.render db rs)
      | Fasta -> render_fasta rs
      | Genalgxml -> render_xml rs)
