lib/mediator/mediator.mli: Entry Genalg_etl Genalg_formats
