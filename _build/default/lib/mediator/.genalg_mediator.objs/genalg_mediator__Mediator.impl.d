lib/mediator/mediator.ml: Entry Genalg_etl Genalg_formats Genalg_gdt List Sequence
