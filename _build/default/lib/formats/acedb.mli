(** An AceDB-like hierarchical record format.

    The paper's Figure 2 distinguishes hierarchical sources (AceDB and
    friends) from flat files and relational data; their change detection
    uses ordered-tree diffing ("the acediff utility will compute minimal
    changes between different snapshots"). This module provides the tree
    type, an indentation-based textual syntax, and conversion to and from
    the neutral {!Entry.t}. *)

type node = {
  tag : string;
  value : string;
  children : node list;
}

val node : ?value:string -> ?children:node list -> string -> node

val print : node -> string
(** Indentation syntax: two spaces per level, [tag: value] per line.
    Tags must not contain [':'] or newlines. *)

val parse : string -> (node, string) result
(** Inverse of {!print} for well-formed input (single root). *)

val equal : node -> node -> bool

val size : node -> int
(** Number of nodes in the tree. *)

val of_entry : Entry.t -> node
val to_entry : node -> (Entry.t, string) result
