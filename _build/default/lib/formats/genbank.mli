(** GenBank flat-file reading and writing (a practical subset).

    Supported record lines: LOCUS, DEFINITION, ACCESSION, VERSION,
    KEYWORDS, SOURCE/ORGANISM, FEATURES with locations and quoted or bare
    qualifiers, ORIGIN with wrapped numbered sequence lines, and the [//]
    terminator. [print] followed by [parse] is the identity on
    {!Entry.t} values (up to feature qualifier formatting). *)

val parse : string -> (Entry.t list, string) result
(** Parse one or more concatenated flat-file records. *)

val parse_one : string -> (Entry.t, string) result
(** Exactly one record. *)

val print : Entry.t list -> string
val print_one : Entry.t -> string
