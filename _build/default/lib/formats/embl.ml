open Genalg_gdt

let print_one (e : Entry.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "ID   %s; SV %d; linear; DNA; STD; SYN; %d BP.\n" e.Entry.accession
       e.Entry.version
       (Sequence.length e.Entry.sequence));
  Buffer.add_string buf (Printf.sprintf "AC   %s;\n" e.Entry.accession);
  Buffer.add_string buf
    (Printf.sprintf "DE   %s\n"
       (if e.Entry.definition = "" then "." else e.Entry.definition));
  Buffer.add_string buf
    (Printf.sprintf "KW   %s\n"
       (if e.Entry.keywords = [] then "." else String.concat "; " e.Entry.keywords ^ "."));
  Buffer.add_string buf (Printf.sprintf "OS   %s\n" e.Entry.organism);
  List.iter
    (fun (f : Feature.t) ->
      Buffer.add_string buf
        (Printf.sprintf "FT   %-16s%s\n"
           (Feature.kind_to_string f.Feature.kind)
           (Location.to_string f.Feature.location));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "FT                   /%s=\"%s\"\n" k v))
        f.Feature.qualifiers)
    e.Entry.features;
  Buffer.add_string buf
    (Printf.sprintf "SQ   Sequence %d BP;\n" (Sequence.length e.Entry.sequence));
  let s = String.lowercase_ascii (Sequence.to_string e.Entry.sequence) in
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    Buffer.add_string buf "     ";
    for block = 0 to 5 do
      let off = !pos + (block * 10) in
      if off < n then begin
        Buffer.add_string buf (String.sub s off (min 10 (n - off)));
        Buffer.add_char buf ' '
      end
    done;
    Buffer.add_string buf (Printf.sprintf "%10d\n" (min n (!pos + 60)));
    pos := !pos + 60
  done;
  Buffer.add_string buf "//\n";
  Buffer.contents buf

let print entries = String.concat "" (List.map print_one entries)

(* ---------------------------------------------------------------- *)

let strip_trailing_dot s =
  let s = String.trim s in
  if s = "." then ""
  else if String.length s > 0 && s.[String.length s - 1] = '.' then
    String.sub s 0 (String.length s - 1)
  else s

let parse_qualifier body =
  if String.length body < 2 || body.[0] <> '/' then None
  else begin
    let body = String.sub body 1 (String.length body - 1) in
    match String.index_opt body '=' with
    | None -> Some (body, "")
    | Some i ->
        let k = String.sub body 0 i in
        let v = String.sub body (i + 1) (String.length body - i - 1) in
        let n = String.length v in
        let v = if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2) else v in
        Some (k, v)
  end

type pstate = {
  mutable accession : string;
  mutable version : int;
  mutable definition : string;
  mutable organism : string;
  mutable keywords : string list;
  mutable features : Feature.t list;
  mutable seq_buf : Buffer.t;
  mutable in_seq : bool;
  mutable seen_any : bool;
}

let fresh () =
  {
    accession = "";
    version = 1;
    definition = "";
    organism = "";
    keywords = [];
    features = [];
    seq_buf = Buffer.create 256;
    in_seq = false;
    seen_any = false;
  }

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let st = ref (fresh ()) in
  let pending : (string * string * (string * string) list) option ref = ref None in
  let error = ref None in
  let flush_feature () =
    match !pending with
    | None -> Ok ()
    | Some (kind, loc, quals) -> (
        pending := None;
        match Location.of_string (String.trim loc) with
        | Error msg -> Error (Printf.sprintf "bad location %S: %s" loc msg)
        | Ok location ->
            (!st).features <-
              Feature.make ~qualifiers:(List.rev quals) (Feature.kind_of_string kind)
                location
              :: (!st).features;
            Ok ())
  in
  let finish () =
    if (!st).accession = "" then Error "record without AC line"
    else
      match Sequence.of_string Sequence.Dna (Buffer.contents (!st).seq_buf) with
      | Error msg -> Error (Printf.sprintf "record %s: %s" (!st).accession msg)
      | Ok sequence ->
          let s = !st in
          entries :=
            Entry.make ~version:s.version ~definition:s.definition
              ~organism:s.organism ~features:(List.rev s.features)
              ~keywords:s.keywords ~accession:s.accession sequence
            :: !entries;
          st := fresh ();
          Ok ()
  in
  let handle line =
    if String.trim line = "" then Ok ()
    else if String.trim line = "//" then
      match flush_feature () with Error _ as e -> e | Ok () -> finish ()
    else if String.length line < 2 then Ok ()
    else begin
      let code = String.sub line 0 2 in
      let body =
        if String.length line > 5 then String.sub line 5 (String.length line - 5)
        else ""
      in
      (!st).seen_any <- true;
      match code with
      | "ID" -> (
          (* "ACC; SV n; ..." *)
          (match String.split_on_char ';' body with
          | acc :: rest ->
              (!st).accession <- String.trim acc;
              List.iter
                (fun part ->
                  let part = String.trim part in
                  if String.length part > 3 && String.sub part 0 3 = "SV " then
                    match int_of_string_opt (String.sub part 3 (String.length part - 3)) with
                    | Some v -> (!st).version <- v
                    | None -> ())
                rest
          | [] -> ());
          Ok ())
      | "AC" -> (
          (match String.split_on_char ';' body with
          | acc :: _ when String.trim acc <> "" -> (!st).accession <- String.trim acc
          | _ -> ());
          Ok ())
      | "DE" ->
          (!st).definition <- strip_trailing_dot body;
          Ok ()
      | "KW" ->
          let v = strip_trailing_dot body in
          (!st).keywords <-
            (if v = "" then [] else List.map String.trim (String.split_on_char ';' v));
          Ok ()
      | "OS" ->
          (!st).organism <- String.trim body;
          Ok ()
      | "FT" ->
          let trimmed = String.trim body in
          if trimmed = "" then Ok ()
          else if trimmed.[0] = '/' then begin
            match !pending with
            | None -> Ok ()
            | Some (kind, loc, quals) -> (
                match parse_qualifier trimmed with
                | Some q ->
                    pending := Some (kind, loc, q :: quals);
                    Ok ()
                | None -> Ok ())
          end
          else if body <> "" && body.[0] <> ' ' then begin
            (* new feature: key then location *)
            match flush_feature () with
            | Error _ as e -> e
            | Ok () -> (
                match String.index_opt trimmed ' ' with
                | None -> Error (Printf.sprintf "feature line without location: %S" line)
                | Some i ->
                    let kind = String.sub trimmed 0 i in
                    let loc = String.trim (String.sub trimmed i (String.length trimmed - i)) in
                    pending := Some (kind, loc, []);
                    Ok ())
          end
          else begin
            (* continuation of the location *)
            match !pending with
            | None -> Ok ()
            | Some (kind, loc, quals) ->
                pending := Some (kind, loc ^ trimmed, quals);
                Ok ()
          end
      | "SQ" ->
          (!st).in_seq <- true;
          flush_feature ()
      | "  " | "	 " ->
          if (!st).in_seq then begin
            String.iter
              (fun c ->
                if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then
                  Buffer.add_char (!st).seq_buf c)
              line;
            Ok ()
          end
          else Ok ()
      | _ ->
          if (!st).in_seq && line.[0] = ' ' then begin
            String.iter
              (fun c ->
                if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then
                  Buffer.add_char (!st).seq_buf c)
              line;
            Ok ()
          end
          else Ok ()
    end
  in
  List.iter
    (fun line ->
      if !error = None then
        match handle line with Ok () -> () | Error msg -> error := Some msg)
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
      if (!st).seen_any && ((!st).accession <> "" || Buffer.length (!st).seq_buf > 0)
      then Error "unterminated record (missing //)"
      else Ok (List.rev !entries)

let parse_one text =
  match parse text with
  | Error _ as e -> e
  | Ok [ e ] -> Ok e
  | Ok entries -> Error (Printf.sprintf "expected 1 record, found %d" (List.length entries))
