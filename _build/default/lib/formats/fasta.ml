open Genalg_gdt

type record = {
  id : string;
  description : string;
  sequence : Sequence.t;
}

let parse ?(alphabet = Sequence.Dna) text =
  let lines = String.split_on_char '\n' text in
  let finish id description buf acc =
    match id with
    | None -> Ok acc
    | Some id -> (
        match Sequence.of_string alphabet (Buffer.contents buf) with
        | Ok sequence -> Ok ({ id; description; sequence } :: acc)
        | Error msg -> Error (Printf.sprintf "record %s: %s" id msg))
  in
  let rec loop id description buf acc = function
    | [] -> Result.map List.rev (finish id description buf acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then loop id description buf acc rest
        else if line.[0] = '>' then begin
          match finish id description buf acc with
          | Error _ as e -> e
          | Ok acc ->
              let header = String.sub line 1 (String.length line - 1) in
              let rid, desc =
                match String.index_opt header ' ' with
                | None -> (header, "")
                | Some i ->
                    ( String.sub header 0 i,
                      String.trim (String.sub header (i + 1) (String.length header - i - 1)) )
              in
              loop (Some rid) desc (Buffer.create 256) acc rest
        end
        else begin
          match id with
          | None -> Error "sequence data before any FASTA header"
          | Some _ ->
              Buffer.add_string buf line;
              loop id description buf acc rest
        end
  in
  loop None "" (Buffer.create 0) [] lines

let print ?(width = 60) records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_char buf '>';
      Buffer.add_string buf r.id;
      if r.description <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf r.description
      end;
      Buffer.add_char buf '\n';
      let s = Sequence.to_string r.sequence in
      let n = String.length s in
      let rec chunks off =
        if off < n then begin
          Buffer.add_string buf (String.sub s off (min width (n - off)));
          Buffer.add_char buf '\n';
          chunks (off + width)
        end
      in
      if n = 0 then Buffer.add_char buf '\n' else chunks 0)
    records;
  Buffer.contents buf

let of_entry (e : Entry.t) =
  {
    id = Printf.sprintf "%s.%d" e.Entry.accession e.Entry.version;
    description = e.Entry.definition;
    sequence = e.Entry.sequence;
  }

let to_entry r =
  let accession, version =
    match String.index_opt r.id '.' with
    | None -> (r.id, 1)
    | Some i -> (
        let acc = String.sub r.id 0 i in
        let rest = String.sub r.id (i + 1) (String.length r.id - i - 1) in
        match int_of_string_opt rest with
        | Some v -> (acc, v)
        | None -> (r.id, 1))
  in
  Entry.make ~version ~definition:r.description ~accession r.sequence
