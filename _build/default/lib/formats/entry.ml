open Genalg_gdt

type t = {
  accession : string;
  version : int;
  definition : string;
  organism : string;
  sequence : Sequence.t;
  features : Feature.t list;
  keywords : string list;
}

let make ?(version = 1) ?(definition = "") ?(organism = "synthetic organism")
    ?(features = []) ?(keywords = []) ~accession sequence =
  { accession; version; definition; organism; sequence; features; keywords }

let essentially_equal a b =
  a.accession = b.accession && a.definition = b.definition
  && a.organism = b.organism
  && Sequence.equal a.sequence b.sequence
  && List.length a.features = List.length b.features
  && List.for_all2 Feature.equal a.features b.features
  && a.keywords = b.keywords

let equal a b = a.version = b.version && essentially_equal a b

let pp ppf t =
  Format.fprintf ppf "%s.%d (%s, %d bp, %d features)" t.accession t.version
    t.organism (Sequence.length t.sequence) (List.length t.features)
