(** The neutral sequence-record type shared by every repository format.

    Real repositories (GenBank, EMBL, …) differ in syntax but agree on
    substance: an accessioned, versioned, annotated sequence from an
    organism. Wrappers parse format text into this type; the warehouse
    integrator reconciles entries; generators emit them. *)

open Genalg_gdt

type t = {
  accession : string;
  version : int;
  definition : string;          (** free-text description line *)
  organism : string;
  sequence : Sequence.t;        (** DNA *)
  features : Feature.t list;
  keywords : string list;
}

val make :
  ?version:int ->
  ?definition:string ->
  ?organism:string ->
  ?features:Feature.t list ->
  ?keywords:string list ->
  accession:string ->
  Sequence.t ->
  t

val equal : t -> t -> bool

val essentially_equal : t -> t -> bool
(** Equality up to version number — used by change detection to decide
    whether a re-announced record really changed. *)

val pp : Format.formatter -> t -> unit
