(** FASTA reading and writing.

    The simplest flat-file format: [>id description] header lines followed
    by wrapped sequence lines. *)

open Genalg_gdt

type record = {
  id : string;
  description : string;
  sequence : Sequence.t;
}

val parse : ?alphabet:Sequence.alphabet -> string -> (record list, string) result
(** Parse multi-record FASTA text. Default alphabet [Dna]. Blank lines and
    leading whitespace are tolerated; sequence validation errors carry the
    record id. *)

val print : ?width:int -> record list -> string
(** Render with lines wrapped at [width] (default 60). *)

val of_entry : Entry.t -> record
val to_entry : record -> Entry.t
(** Accession is the id up to the first ['.'], the version the part after
    it when numeric. *)
