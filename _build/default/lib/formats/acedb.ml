open Genalg_gdt

type node = {
  tag : string;
  value : string;
  children : node list;
}

let node ?(value = "") ?(children = []) tag = { tag; value; children }

let print root =
  let buf = Buffer.create 256 in
  let rec walk depth n =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf n.tag;
    Buffer.add_string buf ":";
    if n.value <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf n.value
    end;
    Buffer.add_char buf '\n';
    List.iter (walk (depth + 1)) n.children
  in
  walk 0 root;
  Buffer.contents buf

let parse text =
  let lines =
    List.filteri (fun _ l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let parse_line line =
    let rec count_spaces i =
      if i < String.length line && line.[i] = ' ' then count_spaces (i + 1) else i
    in
    let indent = count_spaces 0 in
    if indent mod 2 <> 0 then Error (Printf.sprintf "odd indentation: %S" line)
    else begin
      let body = String.sub line indent (String.length line - indent) in
      match String.index_opt body ':' with
      | None -> Error (Printf.sprintf "missing ':' in %S" line)
      | Some i ->
          let tag = String.sub body 0 i in
          let value = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
          Ok (indent / 2, tag, value)
    end
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line l with
        | Ok item -> parse_all (item :: acc) rest
        | Error _ as e -> e)
  in
  match parse_all [] lines with
  | Error msg -> Error msg
  | Ok [] -> Error "empty document"
  | Ok ((d0, _, _) :: _ as items) ->
      if d0 <> 0 then Error "first line must be unindented"
      else begin
        (* build the forest by depth *)
        let rec build depth items =
          match items with
          | (d, tag, value) :: rest when d = depth ->
              let children, rest = build (depth + 1) rest in
              let siblings, rest = build depth rest in
              ({ tag; value; children } :: siblings, rest)
          | _ -> ([], items)
        in
        match build 0 items with
        | [ root ], [] -> Ok root
        | _ :: _ :: _, _ -> Error "multiple root nodes"
        | _, leftover when leftover <> [] -> Error "inconsistent indentation"
        | [], _ -> Error "empty document"
        | [ root ], _ :: _ -> Ok root
      end

let rec equal a b =
  a.tag = b.tag && a.value = b.value
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

let rec size n = 1 + List.fold_left (fun acc c -> acc + size c) 0 n.children

(* ---- entries ------------------------------------------------------ *)

let of_entry (e : Entry.t) =
  let feature_node (f : Feature.t) =
    node "Feature"
      ~value:
        (Feature.kind_to_string f.Feature.kind
        ^ " "
        ^ Location.to_string f.Feature.location)
      ~children:
        (List.map (fun (k, v) -> node "Qualifier" ~value:(k ^ "=" ^ v)) f.Feature.qualifiers)
  in
  node "Sequence" ~value:e.Entry.accession
    ~children:
      ([
         node "Version" ~value:(string_of_int e.Entry.version);
         node "Definition" ~value:e.Entry.definition;
         node "Organism" ~value:e.Entry.organism;
       ]
      @ List.map (fun kw -> node "Keyword" ~value:kw) e.Entry.keywords
      @ List.map feature_node e.Entry.features
      @ [ node "DNA" ~value:(Sequence.to_string e.Entry.sequence) ])

let to_entry root =
  if root.tag <> "Sequence" then Error "root must be a Sequence node"
  else begin
    let accession = root.value in
    let version = ref 1 in
    let definition = ref "" in
    let organism = ref "" in
    let keywords = ref [] in
    let features = ref [] in
    let dna = ref "" in
    let error = ref None in
    List.iter
      (fun child ->
        if !error = None then
          match child.tag with
          | "Version" -> (
              match int_of_string_opt child.value with
              | Some v -> version := v
              | None -> error := Some ("bad version " ^ child.value))
          | "Definition" -> definition := child.value
          | "Organism" -> organism := child.value
          | "Keyword" -> keywords := child.value :: !keywords
          | "DNA" -> dna := child.value
          | "Feature" -> (
              match String.index_opt child.value ' ' with
              | None -> error := Some ("bad feature " ^ child.value)
              | Some i -> (
                  let kind = String.sub child.value 0 i in
                  let loc =
                    String.sub child.value (i + 1) (String.length child.value - i - 1)
                  in
                  match Location.of_string (String.trim loc) with
                  | Error msg -> error := Some msg
                  | Ok location ->
                      let qualifiers =
                        List.filter_map
                          (fun q ->
                            if q.tag <> "Qualifier" then None
                            else
                              match String.index_opt q.value '=' with
                              | None -> Some (q.value, "")
                              | Some j ->
                                  Some
                                    ( String.sub q.value 0 j,
                                      String.sub q.value (j + 1)
                                        (String.length q.value - j - 1) ))
                          child.children
                      in
                      features :=
                        Feature.make ~qualifiers (Feature.kind_of_string kind) location
                        :: !features))
          | other -> error := Some ("unknown tag " ^ other))
      root.children;
    match !error with
    | Some msg -> Error msg
    | None -> (
        match Sequence.of_string Sequence.Dna !dna with
        | Error msg -> Error msg
        | Ok sequence ->
            Ok
              (Entry.make ~version:!version ~definition:!definition
                 ~organism:!organism
                 ~features:(List.rev !features)
                 ~keywords:(List.rev !keywords) ~accession sequence))
  end
