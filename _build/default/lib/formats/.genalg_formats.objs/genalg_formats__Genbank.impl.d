lib/formats/genbank.ml: Buffer Entry Feature Genalg_gdt List Location Printf Sequence String
