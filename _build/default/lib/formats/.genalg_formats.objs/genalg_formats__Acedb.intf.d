lib/formats/acedb.mli: Entry
