lib/formats/genbank.mli: Entry
