lib/formats/fasta.mli: Entry Genalg_gdt Sequence
