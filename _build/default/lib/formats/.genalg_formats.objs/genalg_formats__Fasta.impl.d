lib/formats/fasta.ml: Buffer Entry Genalg_gdt List Printf Result Sequence String
