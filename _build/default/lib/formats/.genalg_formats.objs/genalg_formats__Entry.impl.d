lib/formats/entry.ml: Feature Format Genalg_gdt List Sequence
