lib/formats/entry.mli: Feature Format Genalg_gdt Sequence
