lib/formats/embl.mli: Entry
