open Genalg_gdt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let print_sequence buf seq =
  Buffer.add_string buf "ORIGIN\n";
  let s = String.lowercase_ascii (Sequence.to_string seq) in
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    Buffer.add_string buf (Printf.sprintf "%9d" (!pos + 1));
    for block = 0 to 5 do
      let off = !pos + (block * 10) in
      if off < n then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.sub s off (min 10 (n - off)))
      end
    done;
    Buffer.add_char buf '\n';
    pos := !pos + 60
  done

let print_feature buf (f : Feature.t) =
  Buffer.add_string buf
    (Printf.sprintf "     %-16s%s\n"
       (Feature.kind_to_string f.Feature.kind)
       (Location.to_string f.Feature.location));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "                     /%s=\"%s\"\n" k v))
    f.Feature.qualifiers

let print_one (e : Entry.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "LOCUS       %-16s %d bp    DNA     linear   SYN 01-JAN-2003\n"
       e.Entry.accession
       (Sequence.length e.Entry.sequence));
  Buffer.add_string buf
    (Printf.sprintf "DEFINITION  %s\n"
       (if e.Entry.definition = "" then "." else e.Entry.definition));
  Buffer.add_string buf (Printf.sprintf "ACCESSION   %s\n" e.Entry.accession);
  Buffer.add_string buf
    (Printf.sprintf "VERSION     %s.%d\n" e.Entry.accession e.Entry.version);
  Buffer.add_string buf
    (Printf.sprintf "KEYWORDS    %s\n"
       (if e.Entry.keywords = [] then "." else String.concat "; " e.Entry.keywords ^ "."));
  Buffer.add_string buf (Printf.sprintf "SOURCE      %s\n" e.Entry.organism);
  Buffer.add_string buf (Printf.sprintf "  ORGANISM  %s\n" e.Entry.organism);
  Buffer.add_string buf "FEATURES             Location/Qualifiers\n";
  List.iter (print_feature buf) e.Entry.features;
  print_sequence buf e.Entry.sequence;
  Buffer.add_string buf "//\n";
  Buffer.contents buf

let print entries = String.concat "" (List.map print_one entries)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type pstate = {
  mutable accession : string;
  mutable version : int;
  mutable definition : string;
  mutable organism : string;
  mutable keywords : string list;
  mutable features : Feature.t list; (* reversed *)
  mutable seq_buf : Buffer.t;
}

let fresh () =
  {
    accession = "";
    version = 1;
    definition = "";
    organism = "";
    keywords = [];
    features = [];
    seq_buf = Buffer.create 256;
  }

let strip_trailing_dot s =
  let s = String.trim s in
  if s = "." then ""
  else if String.length s > 0 && s.[String.length s - 1] = '.' then
    String.sub s 0 (String.length s - 1)
  else s

let content_after_keyword line =
  (* record lines: 12-column keyword field *)
  if String.length line <= 12 then ""
  else String.trim (String.sub line 12 (String.length line - 12))

let finish st =
  if st.accession = "" then Error "record without ACCESSION"
  else
    match Sequence.of_string Sequence.Dna (Buffer.contents st.seq_buf) with
    | Error msg -> Error (Printf.sprintf "record %s: %s" st.accession msg)
    | Ok sequence ->
        Ok
          (Entry.make ~version:st.version ~definition:st.definition
             ~organism:st.organism
             ~features:(List.rev st.features)
             ~keywords:st.keywords ~accession:st.accession sequence)

let parse_qualifier line =
  (* "/key=\"value\"" or "/key=value" or bare "/key" *)
  let body = String.trim line in
  if String.length body < 2 || body.[0] <> '/' then None
  else begin
    let body = String.sub body 1 (String.length body - 1) in
    match String.index_opt body '=' with
    | None -> Some (body, "")
    | Some i ->
        let k = String.sub body 0 i in
        let v = String.sub body (i + 1) (String.length body - i - 1) in
        let v =
          let n = String.length v in
          if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
          else v
        in
        Some (k, v)
  end

let is_digit c = c >= '0' && c <= '9'

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let st = ref (fresh ()) in
  let started = ref false in
  let in_features = ref false in
  let in_origin = ref false in
  let pending_feature : (string * string * (string * string) list) option ref =
    ref None
  in
  let error = ref None in
  let flush_feature () =
    match !pending_feature with
    | None -> Ok ()
    | Some (kind, loc_text, quals) -> (
        pending_feature := None;
        match Location.of_string (String.trim loc_text) with
        | Error msg ->
            Error (Printf.sprintf "bad location %S: %s" (String.trim loc_text) msg)
        | Ok location ->
            (!st).features <-
              Feature.make ~qualifiers:(List.rev quals)
                (Feature.kind_of_string kind) location
              :: (!st).features;
            Ok ())
  in
  let handle_line line =
    let raw = line in
    let trimmed = String.trim line in
    if trimmed = "" then Ok ()
    else if trimmed = "//" then begin
      match flush_feature () with
      | Error _ as e -> e
      | Ok () -> (
          match finish !st with
          | Error _ as e -> e
          | Ok entry ->
              entries := entry :: !entries;
              st := fresh ();
              started := false;
              in_features := false;
              in_origin := false;
              Ok ())
    end
    else begin
      let starts_with p =
        String.length raw >= String.length p && String.sub raw 0 (String.length p) = p
      in
      if starts_with "LOCUS" then begin
        started := true;
        in_features := false;
        in_origin := false;
        Ok ()
      end
      else if not !started then Ok () (* preamble junk *)
      else if starts_with "DEFINITION" then begin
        (!st).definition <- strip_trailing_dot (content_after_keyword raw);
        Ok ()
      end
      else if starts_with "ACCESSION" then begin
        (!st).accession <- content_after_keyword raw;
        Ok ()
      end
      else if starts_with "VERSION" then begin
        let v = content_after_keyword raw in
        (match String.index_opt v '.' with
        | Some i -> (
            let acc = String.sub v 0 i in
            let num = String.sub v (i + 1) (String.length v - i - 1) in
            if acc <> "" then (!st).accession <- acc;
            match int_of_string_opt num with
            | Some n -> (!st).version <- n
            | None -> ())
        | None -> if v <> "" then (!st).accession <- v);
        Ok ()
      end
      else if starts_with "KEYWORDS" then begin
        let v = strip_trailing_dot (content_after_keyword raw) in
        (!st).keywords <-
          (if v = "" then []
           else List.map String.trim (String.split_on_char ';' v));
        Ok ()
      end
      else if starts_with "SOURCE" then begin
        (!st).organism <- content_after_keyword raw;
        Ok ()
      end
      else if starts_with "  ORGANISM" then begin
        (!st).organism <- String.trim (String.sub raw 10 (String.length raw - 10));
        Ok ()
      end
      else if starts_with "FEATURES" then begin
        in_features := true;
        in_origin := false;
        Ok ()
      end
      else if starts_with "ORIGIN" then begin
        in_origin := true;
        in_features := false;
        flush_feature ()
      end
      else if !in_origin then begin
        String.iter
          (fun c ->
            if (not (is_digit c)) && c <> ' ' && c <> '\r' then
              Buffer.add_char (!st).seq_buf c)
          raw;
        Ok ()
      end
      else if !in_features then begin
        (* feature key lines have content at column 5; continuation and
           qualifier lines are indented to column 21 *)
        let is_key_line =
          String.length raw > 5 && raw.[0] = ' ' && raw.[5] <> ' '
          && String.sub raw 0 5 = "     "
        in
        if is_key_line then begin
          match flush_feature () with
          | Error _ as e -> e
          | Ok () ->
              let body = String.trim raw in
              (match String.index_opt body ' ' with
              | None -> Error (Printf.sprintf "feature line without location: %S" raw)
              | Some i ->
                  let kind = String.sub body 0 i in
                  let loc = String.trim (String.sub body i (String.length body - i)) in
                  pending_feature := Some (kind, loc, []);
                  Ok ())
        end
        else begin
          let body = String.trim raw in
          match !pending_feature with
          | None -> Ok () (* header continuation *)
          | Some (kind, loc, quals) ->
              if String.length body > 0 && body.[0] = '/' then begin
                match parse_qualifier body with
                | Some q ->
                    pending_feature := Some (kind, loc, q :: quals);
                    Ok ()
                | None -> Ok ()
              end
              else begin
                (* location continuation *)
                pending_feature := Some (kind, loc ^ body, quals);
                Ok ()
              end
        end
      end
      else Ok () (* unknown record line: tolerated *)
    end
  in
  List.iter
    (fun line ->
      if !error = None then
        match handle_line line with Ok () -> () | Error msg -> error := Some msg)
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
      if !started then Error "unterminated record (missing //)"
      else Ok (List.rev !entries)

let parse_one text =
  match parse text with
  | Error _ as e -> e
  | Ok [ e ] -> Ok e
  | Ok entries -> Error (Printf.sprintf "expected 1 record, found %d" (List.length entries))
