(** EMBL flat-file reading and writing (a practical subset).

    Two-letter line codes: ID, AC, DE, KW, OS, FT (feature table with the
    same location/qualifier sub-syntax as GenBank), SQ + sequence lines,
    [//] terminator. *)

val parse : string -> (Entry.t list, string) result
val parse_one : string -> (Entry.t, string) result
val print : Entry.t list -> string
val print_one : Entry.t -> string
