lib/capability/capability.ml: Filename Genalg_adapter Genalg_biolang Genalg_core Genalg_etl Genalg_sqlx Genalg_storage Genalg_synth List Loader Pipeline Printf Result Source Sys
