(* The paper's Table 1: data-management capabilities of six integration
   systems against requirements C1-C15, plus our GenAlg + Unifying
   Database column.

   The six legacy columns are capability models transcribed from the
   paper's own table; the GenAlg column is *probed live* — each claimed
   capability executes the corresponding feature of this implementation
   and downgrades itself if the probe fails. *)

module R = Genalg_core.Requirements

type support = Full | Partial | None_
type cell = { support : support; notes : string }

let cell support notes = { support; notes }

let support_glyph = function Full -> "+" | Partial -> "o" | None_ -> "-"

type system = { name : string; assess : R.requirement -> cell }

(* ---- the six systems, from the paper's Table 1 --------------------- *)

let srs =
  let assess = function
    | R.C1 -> cell Full "user shielded from source details"
    | R.C2 -> cell Partial "HTML"
    | R.C3 -> cell Full "single-access point"
    | R.C4 -> cell Full "simple visual interface"
    | R.C5 -> cell Partial "limited query capability"
    | R.C6 -> cell None_ "no new operations"
    | R.C7 -> cell None_ "no re-organization of source data"
    | R.C8 -> cell None_ "no reconciliation of results"
    | R.C9 -> cell None_ "no provision for uncertainty"
    | R.C10 -> cell Partial "results not integrated; sources must be Web-enabled"
    | R.C11 | R.C12 | R.C13 | R.C14 -> cell None_ "not supported"
    | R.C15 -> cell None_ "no archival functionality"
  in
  { name = "SRS"; assess }

let bionavigator =
  let assess = function
    | R.C1 -> cell Full "user shielded from source details"
    | R.C2 -> cell Partial "HTML"
    | R.C3 -> cell Full "single-access point"
    | R.C4 -> cell Full "simple visual interface"
    | R.C5 -> cell None_ "not query oriented"
    | R.C6 -> cell None_ "no new operations"
    | R.C7 -> cell None_ "no re-organization of source data"
    | R.C8 -> cell None_ "no reconciliation of results"
    | R.C9 -> cell None_ "no provision for uncertainty"
    | R.C10 -> cell Partial "results not integrated; sources must be Web-enabled"
    | R.C11 | R.C12 | R.C13 | R.C14 -> cell None_ "not supported"
    | R.C15 -> cell None_ "no archival functionality"
  in
  { name = "BioNavigator"; assess }

let k2_kleisli =
  let assess = function
    | R.C1 -> cell Full "user shielded from source details"
    | R.C2 -> cell Full "global schema, object-oriented model"
    | R.C3 -> cell Full "single-access point"
    | R.C4 -> cell Partial "not a user-level interface"
    | R.C5 -> cell Full "comprehensive query capability"
    | R.C6 -> cell Full "new operations on integrated view data"
    | R.C7 -> cell Full "re-organization of result possible"
    | R.C8 -> cell None_ "no reconciliation of results"
    | R.C9 -> cell None_ "no provision for uncertainty"
    | R.C10 -> cell Full "results integrated via global schema; wrappers needed"
    | R.C11 | R.C12 | R.C13 | R.C14 -> cell None_ "not supported"
    | R.C15 -> cell None_ "no archival functionality"
  in
  { name = "K2/Kleisli"; assess }

let discoverylink =
  let assess = function
    | R.C1 -> cell Full "user shielded from source details"
    | R.C2 -> cell Full "global schema, relational model"
    | R.C3 -> cell Full "single-access point"
    | R.C4 -> cell Partial "requires knowledge of SQL"
    | R.C5 -> cell Full "comprehensive query capability"
    | R.C6 -> cell Full "new operations on integrated view data"
    | R.C7 -> cell Full "re-organization of result possible"
    | R.C8 -> cell None_ "no reconciliation of results"
    | R.C9 -> cell None_ "no provision for uncertainty"
    | R.C10 -> cell Full "results integrated via global schema; wrappers needed"
    | R.C11 | R.C12 | R.C13 | R.C14 -> cell None_ "not supported"
    | R.C15 -> cell None_ "no archival functionality"
  in
  { name = "DiscoveryLink"; assess }

let tambis =
  let assess = function
    | R.C1 -> cell Full "user shielded from source details"
    | R.C2 -> cell Full "global schema, description logic"
    | R.C3 -> cell Full "single-access point"
    | R.C4 -> cell Full "simple visual interface"
    | R.C5 -> cell Full "comprehensive query capability"
    | R.C6 -> cell Full "new operations on integrated view data"
    | R.C7 -> cell Full "re-organization of result possible"
    | R.C8 -> cell Full "result reconciliation supported"
    | R.C9 -> cell None_ "no provision for uncertainty"
    | R.C10 -> cell Full "results integrated via global schema; wrappers needed"
    | R.C11 | R.C12 | R.C13 | R.C14 -> cell None_ "not supported"
    | R.C15 -> cell None_ "no archival functionality"
  in
  { name = "TAMBIS"; assess }

let gus =
  let assess = function
    | R.C1 -> cell Full "user shielded from source details"
    | R.C2 -> cell Full "GUS schema, relational model; OO views"
    | R.C3 -> cell Full "single-access point"
    | R.C4 -> cell Partial "requires knowledge of SQL"
    | R.C5 -> cell Full "comprehensive query capability"
    | R.C6 -> cell Full "new operations defined on warehouse data"
    | R.C7 -> cell Full "re-organization of result possible"
    | R.C8 -> cell Full "warehouse data reconciled and cleansed"
    | R.C9 -> cell None_ "no provision for uncertainty"
    | R.C10 -> cell Full "query results are integrated"
    | R.C11 -> cell Partial "annotations supported"
    | R.C12 -> cell None_ "not supported"
    | R.C13 -> cell Full "supported"
    | R.C14 -> cell None_ "not supported"
    | R.C15 -> cell Full "archiving of data supported"
  in
  { name = "GUS"; assess }

(* ---- our system, probed live ------------------------------------------ *)

let probe name f =
  match f () with
  | true -> Full
  | false -> None_
  | exception _ ->
      Printf.eprintf "capability probe %s raised\n" name;
      None_

let genalg () =
  (* a tiny live warehouse to probe against; the copy's 2% error rate is
     the paper's typical sequencing-noise level and stays above the
     integrator's duplicate threshold *)
  let rng = Genalg_synth.Rng.make 1 in
  let e = List.hd (Genalg_synth.Recordgen.repository rng ~size:2 ~prefix:"CAP" ()) in
  let noisy = Genalg_synth.Recordgen.noisy_copy rng ~error_rate:0.02 ~rename:"CAPX" e in
  let open Genalg_etl in
  let src_a = Source.create ~name:"a" Source.Logged Source.Flat_file [ e ] in
  let src_b = Source.create ~name:"b" Source.Queryable Source.Relational [ noisy ] in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  let stats = Result.get_ok (Pipeline.bootstrap pl) in
  let db = Pipeline.database pl in
  let sql actor q = Genalg_sqlx.Exec.query db ~actor q in
  let ok actor q = Result.is_ok (sql actor q) in
  (* probes may run more than once per requirement (matrix row + details
     listing); fresh table names keep them idempotent *)
  let probe_counter = ref 0 in
  let fresh_name base =
    incr probe_counter;
    Printf.sprintf "%s%d" base !probe_counter
  in
  let assess = function
    | R.C1 ->
        let s =
          probe "C1" (fun () ->
              (* one warehouse over heterogeneous sources *)
              stats.Loader.entries >= 1 && List.length (Pipeline.sources pl) = 2)
        in
        cell s "one warehouse over heterogeneous sources (ETL, Figure 3)"
    | R.C2 ->
        let s =
          probe "C2" (fun () ->
              (* entries from GenBank-style and relational sources meet in one schema *)
              ok "u" "SELECT accession, seq FROM sequences")
        in
        cell s "GDT-typed global schema; formats normalised by wrappers"
    | R.C3 -> cell Full "single access point: extended SQL / biolang / CLI"
    | R.C4 ->
        let s =
          probe "C4" (fun () ->
              Result.is_ok (Genalg_biolang.Biolang.compile "count sequences"))
        in
        cell s "biological query language; no SQL needed"
    | R.C5 ->
        let s =
          probe "C5" (fun () ->
              ok "u" "SELECT organism, count(*) FROM sequences GROUP BY organism")
        in
        cell s "full query language with genomic operators"
    | R.C6 ->
        let s =
          probe "C6" (fun () ->
              ok "u" "SELECT accession FROM sequences WHERE contains(seq, 'ACGT')")
        in
        cell s "algebra operations usable in any query"
    | R.C7 ->
        let s =
          probe "C7" (fun () ->
              (* results are typed values, reusable in further computation *)
              match sql "u" "SELECT seq FROM sequences LIMIT 1" with
              | Ok (Genalg_sqlx.Exec.Rows { rows = [ [| v |] ]; _ }) ->
                  Result.is_ok (Genalg_adapter.Adapter.of_db v)
              | _ -> false)
        in
        cell s "results are GDT values, not screen text"
    | R.C8 ->
        let s = probe "C8" (fun () -> stats.Loader.entries = 1) in
        cell s "integrator reconciles duplicates at load time"
    | R.C9 ->
        let s =
          probe "C9" (fun () ->
              (* conflicting sources preserved as ranked alternatives *)
              match sql "u" "SELECT count(*) FROM conflicts" with
              | Ok (Genalg_sqlx.Exec.Rows { rows = [ [| Genalg_storage.Dtype.Int n |] ]; _ }) ->
                  n >= 2
              | _ -> false)
        in
        cell s "uncertain values with ranked alternatives (conflicts table)"
    | R.C10 ->
        let s =
          probe "C10" (fun () ->
              match sql "u" "SELECT count(*) FROM sequences" with
              | Ok (Genalg_sqlx.Exec.Rows { rows = [ [| Genalg_storage.Dtype.Int 1 |] ]; _ }) ->
                  true
              | _ -> false)
        in
        cell s "cross-repository data merged into one record"
    | R.C11 ->
        let s =
          probe "C11" (fun () ->
              let t = fresh_name "ann" in
              ok "alice" (Printf.sprintf "CREATE TABLE %s (accession string, note string)" t)
              && ok "alice" (Printf.sprintf "INSERT INTO %s VALUES ('CAP000001', 'observed')" t)
              && ok "alice"
                   (Printf.sprintf
                      "SELECT s.accession, a.note FROM sequences s, %s a WHERE s.accession = a.accession"
                      t))
        in
        cell s "annotations joinable with warehouse data"
    | R.C12 ->
        let s =
          probe "C12" (fun () ->
              (* high-level treatment: translate a stored gene *)
              Result.is_ok
                (Genalg_core.Term.eval_closed Genalg_core.Builtin.default
                   (Genalg_core.Term.app "gc_content"
                      [ Genalg_core.Term.const (Genalg_core.Value.dna "ACGT") ])))
        in
        cell s "data are genes/proteins/sequences with operations"
    | R.C13 ->
        let s =
          probe "C13" (fun () ->
              let t = fresh_name "mine" in
              ok "alice" (Printf.sprintf "CREATE TABLE %s (id int, seq dna)" t)
              && ok "alice" (Printf.sprintf "INSERT INTO %s VALUES (1, dna('ACGTACGT'))" t))
        in
        cell s "user space stores self-generated GDT data"
    | R.C14 ->
        let s =
          probe "C14" (fun () ->
              let sg = Genalg_core.Builtin.create () in
              Result.is_ok
                (Genalg_core.Signature.register sg
                   {
                     Genalg_core.Signature.name = "probe_fn";
                     arg_sorts = [ Genalg_core.Sort.Dna ];
                     result_sort = Genalg_core.Sort.Int;
                     doc = "";
                     impl = (fun _ -> Ok (Genalg_core.Value.VInt 0));
                   }))
        in
        cell s "user-defined operators register into signature and SQL"
    | R.C15 ->
        let s =
          probe "C15" (fun () ->
              let path = Filename.temp_file "cap" ".db" in
              let r = Genalg_storage.Database.save db path in
              (match r with Ok () -> Sys.remove path | Error _ -> ());
              Result.is_ok r)
        in
        cell s "warehouse snapshots preserve source contents"
  in
  { name = "GenAlg+UDB"; assess }

let all_systems () =
  [ srs; bionavigator; k2_kleisli; discoverylink; tambis; gus; genalg () ]
