(** Scalar expression evaluation.

    Evaluates {!Ast.expr} trees against a row-binding environment and a
    UDF registry, so genomic operators registered by the adapter are
    callable in any expression position (paper section 6.3). Aggregates
    are the executor's business and are rejected here. *)

type env = {
  lookup : string option -> string -> (Genalg_storage.Dtype.value, string) result;
      (** resolve a (qualifier, column) reference *)
  udts : Genalg_storage.Udt.t;
}

val empty_env : env
(** No columns, no UDFs — for constant expressions. *)

val eval : env -> Ast.expr -> (Genalg_storage.Dtype.value, string) result

val eval_predicate : env -> Ast.expr -> (bool, string) result
(** Evaluate to a boolean; [Null] counts as false (SQL semantics). *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE: [%] any run, [_] any one character; case-sensitive. *)

val builtin_functions : string list
(** Scalar built-ins always available: upper, lower, strlen, abs, round,
    coalesce, substr. *)
