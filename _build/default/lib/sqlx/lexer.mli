(** Tokenizer for the extended query language. *)

type token =
  | Ident of string        (** identifier or keyword, original case *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string      (** single-quoted; [''] unescaped *)
  | Lparen | Rparen
  | Comma | Dot | Star | Semicolon
  | Op of string           (** one of [=], [<>], [<], [<=], [>], [>=], [+], [-], [/] *)
  | Eof

val tokenize : string -> (token list, string) result
(** Errors mention the offending offset. Keywords are returned as
    [Ident]s; the parser matches them case-insensitively. *)

val token_to_string : token -> string
