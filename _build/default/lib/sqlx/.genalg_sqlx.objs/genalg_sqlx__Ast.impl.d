lib/sqlx/ast.ml: Buffer Bytes Genalg_storage List Printf String
