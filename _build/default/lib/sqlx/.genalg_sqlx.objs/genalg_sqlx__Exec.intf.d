lib/sqlx/exec.mli: Ast Genalg_storage
