lib/sqlx/lexer.mli:
