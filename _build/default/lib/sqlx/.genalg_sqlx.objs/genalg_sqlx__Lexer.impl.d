lib/sqlx/lexer.ml: Buffer List Printf String
