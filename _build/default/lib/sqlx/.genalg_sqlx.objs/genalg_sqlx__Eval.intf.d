lib/sqlx/eval.mli: Ast Genalg_storage
