lib/sqlx/exec.ml: Array Ast Eval Genalg_storage List Option Parser Plan Printf Result String
