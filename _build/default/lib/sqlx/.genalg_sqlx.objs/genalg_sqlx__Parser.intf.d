lib/sqlx/parser.mli: Ast
