lib/sqlx/plan.ml: Ast Float Genalg_storage List Printf String
