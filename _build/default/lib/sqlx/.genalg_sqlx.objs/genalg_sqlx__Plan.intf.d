lib/sqlx/plan.mli: Ast Genalg_storage
