lib/sqlx/ast.mli: Genalg_storage
