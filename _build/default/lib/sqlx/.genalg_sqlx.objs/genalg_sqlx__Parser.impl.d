lib/sqlx/parser.ml: Ast Genalg_storage Lexer List Printf String
