lib/sqlx/eval.ml: Ast Float Genalg_storage List Option Printf String
