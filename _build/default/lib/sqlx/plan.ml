module D = Genalg_storage.Dtype

type access =
  | Full_scan
  | Index_eq of { column : string; key : D.value }
  | Index_range of {
      column : string;
      lo : D.value option;
      hi : D.value option;
      lo_inclusive : bool;
      hi_inclusive : bool;
    }
  | Genomic_contains of { column : string; pattern : string }

type table_plan = {
  table : string;
  alias : string;
  access : access;
  filters : Ast.expr list;
}

type t = {
  tables : table_plan list;
  join_filters : Ast.expr list;
}

type catalog = {
  has_index : table:string -> column:string -> bool;
  has_genomic_index : table:string -> column:string -> bool;
  column_exists : table:string -> column:string -> bool;
  equality_selectivity : table:string -> column:string -> float option;
}

(* ------------------------------------------------------------------ *)
(* Cost and selectivity models                                         *)

let fn_cost name =
  match String.lowercase_ascii name with
  | "resembles" | "identity" | "edit_distance" -> 5000.
  | "contains" | "find_motif" -> 200.
  | "decode" | "translate" | "find_orfs" | "digest" -> 500.
  | "gc_content" | "melting_temperature" | "reverse_complement" | "complement"
  | "length" | "subsequence" | "molecular_weight" | "gene_sequence"
  | "protein_sequence" | "mrna_sequence" | "transcribe" | "splice"
  | "transcribe_seq" | "gene_id" | "exon_count" ->
      50.
  | _ -> 5.

let rec predicate_cost = function
  | Ast.Lit _ | Ast.Col _ | Ast.Count_star -> 0.5
  | Ast.Not e | Ast.Neg e -> predicate_cost e
  | Ast.Binop (_, a, b) -> 1. +. predicate_cost a +. predicate_cost b
  | Ast.Fn (name, args) ->
      fn_cost name +. List.fold_left (fun acc a -> acc +. predicate_cost a) 0. args

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* Probability that a random DNA sequence of moderate length (~1 kb)
   contains a fixed pattern: ~ len * 4^-|pattern|. *)
let contains_selectivity pattern_len =
  clamp 1e-6 1.0 (1000. *. (0.25 ** float_of_int pattern_len))

let rec predicate_selectivity expr =
  match expr with
  | Ast.Fn (name, args) when String.lowercase_ascii name = "contains" -> (
      match args with
      | [ _; Ast.Lit (D.Str pattern) ] -> contains_selectivity (String.length pattern)
      | _ -> 0.1)
  | Ast.Binop (((Ast.Ge | Ast.Gt) as _op), Ast.Fn (name, _), Ast.Lit _)
    when String.lowercase_ascii name = "resembles" ->
      0.02
  | Ast.Binop ((Ast.Le | Ast.Lt), Ast.Lit _, Ast.Fn (name, _))
    when String.lowercase_ascii name = "resembles" ->
      0.02
  | Ast.Binop (Ast.Eq, _, _) -> 0.05
  | Ast.Binop (Ast.Ne, _, _) -> 0.95
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 0.3
  | Ast.Binop (Ast.Like, _, _) -> 0.25
  | Ast.Binop (Ast.And, a, b) -> predicate_selectivity a *. predicate_selectivity b
  | Ast.Binop (Ast.Or, a, b) ->
      let sa = predicate_selectivity a and sb = predicate_selectivity b in
      clamp 0. 1. (sa +. sb -. (sa *. sb))
  | Ast.Not e -> clamp 0.001 1. (1. -. predicate_selectivity e)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), _, _) -> 0.5
  | Ast.Fn _ -> 0.5
  | Ast.Lit (D.Bool false) -> 0.001
  | Ast.Lit _ | Ast.Col _ | Ast.Count_star -> 0.5
  | Ast.Neg _ -> 0.5

let rank e =
  let s = predicate_selectivity e in
  predicate_cost e /. Float.max 1e-6 (1. -. s)

(* Selectivity refined by ANALYZE statistics for equality predicates on
   this table's columns. *)
let selectivity_with catalog ~table ~alias expr =
  let col_of = function
    | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
      -> Some c
    | Ast.Col (None, c) -> Some c
    | _ -> None
  in
  match expr with
  | Ast.Binop (Ast.Eq, lhs, Ast.Lit _) | Ast.Binop (Ast.Eq, Ast.Lit _, lhs) -> (
      match col_of lhs with
      | Some c -> (
          match catalog.equality_selectivity ~table ~column:c with
          | Some s -> clamp 1e-6 1. s
          | None -> predicate_selectivity expr)
      | None -> predicate_selectivity expr)
  | _ -> predicate_selectivity expr

let rank_with catalog ~table ~alias e =
  let s = selectivity_with catalog ~table ~alias e in
  predicate_cost e /. Float.max 1e-6 (1. -. s)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)

(* Aliases a conjunct references; unqualified columns are attributed by
   probing the catalog across the FROM tables. *)
let aliases_of catalog from expr =
  let cols = Ast.columns_of_expr expr in
  let resolve (qualifier, col) =
    match qualifier with
    | Some q -> [ q ]
    | None ->
        List.filter_map
          (fun (table, alias) ->
            if catalog.column_exists ~table ~column:col then Some alias else None)
          from
  in
  List.sort_uniq String.compare (List.concat_map resolve cols)

(* Try to turn a conjunct into an index access for [alias]/[table]. *)
let index_access catalog ~table ~alias expr =
  let col_of = function
    | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
      -> Some c
    | Ast.Col (None, c) -> Some c
    | _ -> None
  in
  let indexed c = catalog.has_index ~table ~column:c in
  match expr with
  | Ast.Binop (Ast.Eq, lhs, Ast.Lit v) -> (
      match col_of lhs with
      | Some c when indexed c -> Some (Index_eq { column = c; key = v })
      | _ -> None)
  | Ast.Binop (Ast.Eq, Ast.Lit v, rhs) -> (
      match col_of rhs with
      | Some c when indexed c -> Some (Index_eq { column = c; key = v })
      | _ -> None)
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), lhs, Ast.Lit v) -> (
      match col_of lhs with
      | Some c when indexed c ->
          let range =
            match op with
            | Ast.Lt ->
                Index_range
                  { column = c; lo = None; hi = Some v; lo_inclusive = true; hi_inclusive = false }
            | Ast.Le ->
                Index_range
                  { column = c; lo = None; hi = Some v; lo_inclusive = true; hi_inclusive = true }
            | Ast.Gt ->
                Index_range
                  { column = c; lo = Some v; hi = None; lo_inclusive = false; hi_inclusive = true }
            | Ast.Ge ->
                Index_range
                  { column = c; lo = Some v; hi = None; lo_inclusive = true; hi_inclusive = true }
            | _ -> assert false
          in
          Some range
      | _ -> None)
  | _ -> None

(* a contains(col, 'LIT') conjunct over a genomically-indexed column
   becomes an access path; the executor re-applies the predicate when it
   must fall back to scanning *)
let genomic_access catalog ~table ~alias expr =
  let col_of = function
    | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
      -> Some c
    | Ast.Col (None, c) -> Some c
    | _ -> None
  in
  match expr with
  | Ast.Fn (name, [ col_e; Ast.Lit (D.Str pattern) ])
    when String.lowercase_ascii name = "contains" -> (
      match col_of col_e with
      | Some c when catalog.has_genomic_index ~table ~column:c ->
          Some (Genomic_contains { column = c; pattern })
      | _ -> None)
  | _ -> None

let make ?(optimize = true) catalog (select : Ast.select) =
  let conjuncts =
    match select.Ast.where with None -> [] | Some w -> Ast.conjuncts w
  in
  let from = select.Ast.from in
  let classified =
    List.map (fun c -> (c, aliases_of catalog from c)) conjuncts
  in
  if not optimize then begin
    (* naive: all single-table conjuncts stay in source order, no indexes *)
    let tables =
      List.map
        (fun (table, alias) ->
          let filters =
            List.filter_map
              (fun (c, al) -> if al = [ alias ] then Some c else None)
              classified
          in
          { table; alias; access = Full_scan; filters })
        from
    in
    let join_filters =
      List.filter_map
        (fun (c, al) -> if List.length al <> 1 then Some c else None)
        classified
    in
    { tables; join_filters }
  end
  else begin
    let tables =
      List.map
        (fun (table, alias) ->
          let mine =
            List.filter_map
              (fun (c, al) -> if al = [ alias ] then Some c else None)
              classified
          in
          (* pick the first usable index conjunct as the access path *)
          let access, residual =
            let rec pick probe seen = function
              | [] -> (Full_scan, List.rev seen)
              | c :: rest -> (
                  match probe c with
                  | Some a -> (a, List.rev_append seen rest)
                  | None -> pick probe (c :: seen) rest)
            in
            (* prefer a B-tree equality/range path; otherwise try the
               genomic substring index *)
            match pick (index_access catalog ~table ~alias) [] mine with
            | (Full_scan, _) -> pick (genomic_access catalog ~table ~alias) [] mine
            | found -> found
          in
          let filters =
            List.stable_sort
              (fun a b ->
                Float.compare (rank_with catalog ~table ~alias a)
                  (rank_with catalog ~table ~alias b))
              residual
          in
          { table; alias; access; filters })
        from
    in
    let join_filters =
      List.filter_map
        (fun (c, al) -> if List.length al <> 1 then Some c else None)
        classified
      |> List.stable_sort (fun a b -> Float.compare (rank a) (rank b))
    in
    { tables; join_filters }
  end

let access_to_string = function
  | Full_scan -> "full scan"
  | Index_eq { column; key } ->
      Printf.sprintf "index %s = %s" column (D.value_to_display key)
  | Index_range { column; lo; hi; _ } ->
      Printf.sprintf "index %s in [%s, %s]" column
        (match lo with Some v -> D.value_to_display v | None -> "-inf")
        (match hi with Some v -> D.value_to_display v | None -> "+inf")
  | Genomic_contains { column; pattern } ->
      Printf.sprintf "genomic index %s contains %S" column pattern

let to_string t =
  let lines =
    List.map
      (fun tp ->
        Printf.sprintf "scan %s as %s via %s%s" tp.table tp.alias
          (access_to_string tp.access)
          (match tp.filters with
          | [] -> ""
          | fs ->
              Printf.sprintf " filter [%s]"
                (String.concat "; " (List.map Ast.expr_to_string fs))))
      t.tables
  in
  let join_line =
    match t.join_filters with
    | [] -> []
    | fs ->
        [ Printf.sprintf "join filter [%s]"
            (String.concat "; " (List.map Ast.expr_to_string fs)) ]
  in
  String.concat "\n" (lines @ join_line)
