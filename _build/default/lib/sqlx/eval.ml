module D = Genalg_storage.Dtype
module Udt = Genalg_storage.Udt

type env = {
  lookup : string option -> string -> (D.value, string) result;
  udts : Udt.t;
}

let empty_env =
  {
    lookup = (fun _ name -> Error (Printf.sprintf "unknown column %s" name));
    udts = Udt.create ();
  }

let like_match ~pattern text =
  (* classic two-pointer LIKE matcher with backtracking on '%' *)
  let np = String.length pattern and nt = String.length text in
  let rec at pi ti star_p star_t =
    if ti = nt then
      (* consume trailing % *)
      let rec only_percent i = i = np || (pattern.[i] = '%' && only_percent (i + 1)) in
      if only_percent pi then true
      else if star_p >= 0 then false
      else false
    else if pi < np && pattern.[pi] = '%' then at (pi + 1) ti pi ti
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = text.[ti]) then
      at (pi + 1) (ti + 1) star_p star_t
    else if star_p >= 0 then at (star_p + 1) (star_t + 1) star_p (star_t + 1)
    else false
  in
  at 0 0 (-1) (-1)

let builtin_functions =
  [ "upper"; "lower"; "strlen"; "abs"; "round"; "coalesce"; "substr" ]

let num2 name a b fi ff =
  match a, b with
  | D.Int x, D.Int y -> Ok (fi x y)
  | D.Int x, D.Float y -> Ok (ff (float_of_int x) y)
  | D.Float x, D.Int y -> Ok (ff x (float_of_int y))
  | D.Float x, D.Float y -> Ok (ff x y)
  | _ ->
      Error
        (Printf.sprintf "%s expects numbers, got %s and %s" name
           (D.value_to_display a) (D.value_to_display b))

let arith name a b fi ff =
  if a = D.Null || b = D.Null then Ok D.Null
  else num2 name a b (fun x y -> D.Int (fi x y)) (fun x y -> D.Float (ff x y))

let compare_op op a b =
  if a = D.Null || b = D.Null then Ok D.Null
  else begin
    let c = D.compare_value a b in
    let r =
      match op with
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | Ast.And | Ast.Or | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Like ->
          assert false
    in
    Ok (D.Bool r)
  end

let as_bool name = function
  | D.Bool b -> Ok (Some b)
  | D.Null -> Ok None
  | v -> Error (Printf.sprintf "%s expects booleans, got %s" name (D.value_to_display v))

let rec eval env expr =
  match expr with
  | Ast.Lit v -> Ok v
  | Ast.Col (qualifier, name) -> env.lookup qualifier name
  | Ast.Count_star -> Error "COUNT(*) outside an aggregate context"
  | Ast.Not e -> (
      match eval env e with
      | Error _ as err -> err
      | Ok v -> (
          match as_bool "NOT" v with
          | Error _ as err -> err
          | Ok None -> Ok D.Null
          | Ok (Some b) -> Ok (D.Bool (not b))))
  | Ast.Neg e -> (
      match eval env e with
      | Error _ as err -> err
      | Ok (D.Int i) -> Ok (D.Int (-i))
      | Ok (D.Float f) -> Ok (D.Float (-.f))
      | Ok D.Null -> Ok D.Null
      | Ok v -> Error (Printf.sprintf "cannot negate %s" (D.value_to_display v)))
  | Ast.Binop (Ast.And, a, b) -> eval_logic env ( && ) false a b
  | Ast.Binop (Ast.Or, a, b) -> eval_logic env ( || ) true a b
  | Ast.Binop (Ast.Like, a, b) -> (
      match eval env a, eval env b with
      | Error e, _ | _, Error e -> Error e
      | Ok D.Null, _ | _, Ok D.Null -> Ok D.Null
      | Ok (D.Str text), Ok (D.Str pattern) -> Ok (D.Bool (like_match ~pattern text))
      | Ok a, Ok b ->
          Error
            (Printf.sprintf "LIKE expects strings, got %s and %s"
               (D.value_to_display a) (D.value_to_display b)))
  | Ast.Binop (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    -> (
      match eval env a, eval env b with
      | Error e, _ | _, Error e -> Error e
      | Ok va, Ok vb -> compare_op op va vb)
  | Ast.Binop (Ast.Add, a, b) -> eval_arith env "+" a b ( + ) ( +. )
  | Ast.Binop (Ast.Sub, a, b) -> eval_arith env "-" a b ( - ) ( -. )
  | Ast.Binop (Ast.Mul, a, b) -> eval_arith env "*" a b ( * ) ( *. )
  | Ast.Binop (Ast.Div, a, b) -> (
      match eval env a, eval env b with
      | Error e, _ | _, Error e -> Error e
      | Ok _, Ok (D.Int 0) -> Error "division by zero"
      | Ok va, Ok vb -> arith "/" va vb ( / ) ( /. ))
  | Ast.Fn (name, args) -> eval_fn env name args

and eval_logic env combine short_circuit_on a b =
  match eval env a with
  | Error _ as err -> err
  | Ok va -> (
      match as_bool "AND/OR" va with
      | Error _ as err -> err
      | Ok (Some x) when x = short_circuit_on -> Ok (D.Bool x)
      | Ok first -> (
          match eval env b with
          | Error _ as err -> err
          | Ok vb -> (
              match as_bool "AND/OR" vb with
              | Error _ as err -> err
              | Ok (Some y) when y = short_circuit_on -> Ok (D.Bool y)
              | Ok second -> (
                  match first, second with
                  | Some x, Some y -> Ok (D.Bool (combine x y))
                  | _ -> Ok D.Null))))

and eval_arith env name a b fi ff =
  match eval env a, eval env b with
  | Error e, _ | _, Error e -> Error e
  | Ok va, Ok vb -> arith name va vb fi ff

and eval_fn env name args =
  if Ast.is_aggregate_fn name then
    Error (Printf.sprintf "aggregate %s outside an aggregate context" name)
  else begin
    let rec eval_args acc = function
      | [] -> Ok (List.rev acc)
      | a :: rest -> (
          match eval env a with
          | Ok v -> eval_args (v :: acc) rest
          | Error _ as e -> e)
    in
    match eval_args [] args with
    | Error _ as e -> e
    | Ok values -> (
        match String.lowercase_ascii name, values with
        | "upper", [ D.Str s ] -> Ok (D.Str (String.uppercase_ascii s))
        | "lower", [ D.Str s ] -> Ok (D.Str (String.lowercase_ascii s))
        | "strlen", [ D.Str s ] -> Ok (D.Int (String.length s))
        | "abs", [ D.Int i ] -> Ok (D.Int (abs i))
        | "abs", [ D.Float f ] -> Ok (D.Float (Float.abs f))
        | "round", [ D.Float f ] -> Ok (D.Int (int_of_float (Float.round f)))
        | "round", [ D.Int i ] -> Ok (D.Int i)
        | "coalesce", [ a; b ] -> Ok (if a = D.Null then b else a)
        | "substr", [ D.Str s; D.Int pos; D.Int len ] ->
            if pos < 0 || len < 0 || pos + len > String.length s then
              Error "substr out of bounds"
            else Ok (D.Str (String.sub s pos len))
        | _ -> (
            (* user-defined (genomic) function *)
            let arg_types =
              List.map
                (fun v -> Option.value (D.type_of_value v) ~default:D.TString)
                values
            in
            match Udt.resolve_function env.udts name arg_types with
            | Some udf -> udf.Udt.code values
            | None ->
                Error
                  (Printf.sprintf "unknown function %s(%s)" name
                     (String.concat ", " (List.map D.to_string arg_types)))))
  end

let eval_predicate env expr =
  match eval env expr with
  | Error msg -> Error msg
  | Ok (D.Bool b) -> Ok b
  | Ok D.Null -> Ok false
  | Ok v ->
      Error (Printf.sprintf "predicate evaluated to %s" (D.value_to_display v))
