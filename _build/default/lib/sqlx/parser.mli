(** Recursive-descent parser for the extended query language.

    Grammar, with case-insensitive keywords and comma-separated lists:
    {v
    stmt   := select | insert | create_table | create_index | delete
    select := SELECT proj-list-or-star FROM rel-list
              [WHERE expr] [GROUP BY expr-list] [HAVING expr]
              [ORDER BY order-list] [LIMIT int]
    proj   := expr [AS ident]
    rel    := ident [ident]          -- table with optional alias
    expr   := OR-tree over NOT, comparisons = <> < <= > >= LIKE,
              additive and multiplicative arithmetic, unary minus,
              function calls, qualified columns, literals
    v} *)

val parse : string -> (Ast.stmt, string) result
(** One statement, optionally ';'-terminated. *)

val parse_expr : string -> (Ast.expr, string) result
(** A bare expression (used by tests and the biological language). *)
