(** Query execution against the Unifying Database.

    Materializing executor over {!Plan} plans: index or full scans,
    pushed-down filters, nested-loop joins with early join-filter
    application, grouping/aggregation, HAVING, ORDER BY, LIMIT. All reads
    and writes are permission-checked through {!Genalg_storage.Database}
    with the calling actor. *)

module D := Genalg_storage.Dtype

type result_set = {
  columns : string list;
  rows : D.value array list;
}

type outcome =
  | Rows of result_set
  | Affected of int   (** INSERT / DELETE *)
  | Executed          (** DDL *)

val run_select :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> Ast.select ->
  (result_set, string) result

val run :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> Ast.stmt ->
  (outcome, string) result
(** DDL and INSERTs target the actor's own space, except for the loader
    actor, whose tables live in the public space. *)

val query :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> string ->
  (outcome, string) result
(** Parse then {!run}. *)

val render : Genalg_storage.Database.t -> result_set -> string
(** ASCII table with UDT-aware value display. *)
