(* Uncertainty and the ontology — the parts of the paper that no system
   in its Table 1 supported.

   Section 4.1: a controlled vocabulary where every term has a unique
   semantics per context (homonyms disambiguate by context).
   Section 4.3: biological results "are inherently uncertain … always
   attached with some degree of uncertainty"; splice is the paper's own
   example of an operation whose what is known but whose how is not.
   Section 6.4: GenAlgXML carries those high-level, uncertainty-laden
   objects between tools.

   Run with: dune exec examples/uncertainty_and_ontology.exe *)

open Genalg_gdt
module Ops = Genalg_core.Ops
module Ontology = Genalg_core.Ontology
module Value = Genalg_core.Value

let section title = Printf.printf "\n== %s ==\n" title

let () =
  section "The ontology: one term, one semantics per context (paper 4.1)";
  let onto = Ontology.default () in
  Printf.printf "%d concepts in the default ontology\n" (Ontology.cardinal onto);
  List.iter
    (fun term ->
      match Ontology.resolve onto term with
      | Some c ->
          Printf.printf "  %-16s -> %-22s (%s)\n" term
            (match c.Ontology.target with
            | Ontology.Sort_target s -> "sort " ^ Genalg_core.Sort.to_string s
            | Ontology.Operation_target o -> "operation " ^ o)
            c.Ontology.definition
      | None -> Printf.printf "  %-16s -> ?\n" term)
    [ "gene"; "locus"; "messenger rna"; "gc fraction"; "homologous to" ];
  (* the homonym: "expression" means different things in different fields *)
  Printf.printf "\n'expression' is ambiguous: %b\n" (Ontology.is_ambiguous onto "expression");
  List.iter
    (fun ctx ->
      match Ontology.resolve ~context:ctx onto "expression" with
      | Some c -> Printf.printf "  in %-18s: %s\n" ctx c.Ontology.definition
      | None -> ())
    [ "molecular-biology"; "query-language" ];
  (* uniqueness is enforced, as the paper requires *)
  (match
     Ontology.add onto
       {
         Ontology.term = "gene";
         synonyms = [];
         definition = "a second, conflicting definition";
         context = "molecular-biology";
         target = Ontology.Sort_target Genalg_core.Sort.Gene;
       }
   with
  | Error msg -> Printf.printf "re-defining 'gene' is rejected: %s\n" msg
  | Ok () -> Printf.printf "UNEXPECTED: duplicate accepted\n");

  section "Uncertain splicing (paper 4.3)";
  let rng = Genalg_synth.Rng.make 43 in
  let gene = Genalg_synth.Genegen.gene rng ~exon_count:4 ~id:"unc1" () in
  Printf.printf "gene %s: %d exons, %d bp\n" gene.Gene.id (Gene.exon_count gene)
    (Gene.length gene);
  let u = Ops.splice_uncertain ~confidence:0.85 (Ops.transcribe gene) in
  Printf.printf "splice_uncertain returned %d alternatives:\n" (Uncertain.cardinal u);
  List.iteri
    (fun i (alt : Transcript.mrna Uncertain.alternative) ->
      Printf.printf "  %d. %4d nt @ confidence %.3f%s\n" (i + 1)
        (Transcript.mrna_length alt.Uncertain.value)
        alt.Uncertain.confidence
        (if i = 0 then "  (canonical)" else "  (exon-skipping variant)"))
    (Uncertain.alternatives u);
  (* uncertainty propagates through downstream operations *)
  let proteins =
    Uncertain.bind
      (fun m ->
        match Ops.translate m with
        | Ok p -> Uncertain.make ~confidence:0.95 p
        | Error _ -> Uncertain.make ~confidence:0.0 (Protein.make_exn ~id:"?" (Sequence.protein "")))
      u
  in
  Printf.printf "\nafter translation (confidences multiply):\n";
  List.iteri
    (fun i (alt : Protein.t Uncertain.alternative) ->
      Printf.printf "  %d. %3d aa @ confidence %.3f\n" (i + 1)
        (Protein.length alt.Uncertain.value)
        alt.Uncertain.confidence)
    (Uncertain.alternatives proteins);
  let pruned = Uncertain.prune ~min_confidence:0.5 proteins in
  Printf.printf "pruned below 0.5: %d alternative(s) remain\n" (Uncertain.cardinal pruned);

  section "Conflicting repositories become uncertain values (C9)";
  let e = List.hd (Genalg_synth.Recordgen.repository rng ~size:1 ~prefix:"UNC" ()) in
  let noisy = Genalg_synth.Recordgen.noisy_copy rng ~error_rate:0.03 ~rename:"UNCCOPY" e in
  let merged =
    Genalg_etl.Integrator.reconcile ~threshold:0.5 [ ("bank-a", e); ("bank-b", noisy) ]
  in
  List.iter
    (fun (m : Genalg_etl.Integrator.merged) ->
      Printf.printf "record %s: consistent = %b\n"
        m.Genalg_etl.Integrator.canonical.Genalg_formats.Entry.accession
        m.Genalg_etl.Integrator.consistent;
      List.iter
        (fun (alt : Sequence.t Uncertain.alternative) ->
          Printf.printf "  variant of %d bp @ %.2f from %s\n"
            (Sequence.length alt.Uncertain.value)
            alt.Uncertain.confidence
            (match alt.Uncertain.provenance with
            | Some p -> Format.asprintf "%a" Provenance.pp p
            | None -> "?"))
        (Uncertain.alternatives m.Genalg_etl.Integrator.sequence))
    merged;

  section "Uncertain values travel in GenAlgXML (paper 6.4)";
  let mrna_values = Uncertain.map (fun m -> Value.VMrna m) u in
  let xml = Genalg_xml.Genalgxml.to_string (Value.uncertain mrna_values) in
  (* print just the head of the document *)
  let lines = String.split_on_char '\n' xml in
  List.iteri (fun i l -> if i < 8 then print_endline l) lines;
  Printf.printf "... (%d lines)\n" (List.length lines);
  match Genalg_xml.Genalgxml.of_string xml with
  | Ok v2 ->
      Printf.printf "round-trip preserves all alternatives: %b\n"
        (Value.equal (Value.uncertain mrna_values) v2)
  | Error msg -> Printf.printf "round-trip failed: %s\n" msg
