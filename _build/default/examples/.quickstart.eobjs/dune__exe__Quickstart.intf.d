examples/quickstart.mli:
