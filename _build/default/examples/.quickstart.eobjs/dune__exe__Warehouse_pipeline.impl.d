examples/warehouse_pipeline.ml: Filename Genalg_biolang Genalg_etl Genalg_sqlx Genalg_storage Genalg_synth List Loader Monitor Option Pipeline Printf Result Source Sys
