examples/mediator_vs_warehouse.ml: Array Entry Genalg_etl Genalg_formats Genalg_mediator Genalg_sqlx Genalg_storage Genalg_synth List Pipeline Printf Result Source String Unix
