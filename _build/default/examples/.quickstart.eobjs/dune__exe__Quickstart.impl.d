examples/quickstart.ml: Format Genalg_core Genalg_gdt Genalg_synth Genalg_xml Gene List Option Printf Protein Sequence String Transcript Uncertain
