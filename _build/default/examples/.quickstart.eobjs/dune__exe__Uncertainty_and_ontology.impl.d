examples/uncertainty_and_ontology.ml: Format Genalg_core Genalg_etl Genalg_formats Genalg_gdt Genalg_synth Genalg_xml Gene List Printf Protein Provenance Sequence String Transcript Uncertain
