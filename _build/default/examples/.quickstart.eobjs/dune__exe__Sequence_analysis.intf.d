examples/sequence_analysis.mli:
