examples/mediator_vs_warehouse.mli:
