examples/warehouse_pipeline.mli:
