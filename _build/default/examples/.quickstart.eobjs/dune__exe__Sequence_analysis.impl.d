examples/sequence_analysis.ml: Chromosome Feature Format Genalg_align Genalg_core Genalg_etl Genalg_formats Genalg_gdt Genalg_seqindex Genalg_synth Genome List Option Printf Sequence String Unix
