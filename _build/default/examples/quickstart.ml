(* Quickstart: the Genomics Algebra as a stand-alone library.

   Run with: dune exec examples/quickstart.exe

   Walks the paper's core story: genomic data types, the central-dogma
   operators (including the mini algebra's composed term
   translate(splice(transcribe(g)))), uncertainty, and extensibility. *)

open Genalg_gdt
module Ops = Genalg_core.Ops
module Value = Genalg_core.Value
module Term = Genalg_core.Term
module Sort = Genalg_core.Sort
module Signature = Genalg_core.Signature

let section title = Printf.printf "\n== %s ==\n" title

let () =
  section "Genomic data types";
  (* a small gene with two exons; the intron carries GT...AG splice sites *)
  let dna = Sequence.dna ("ATGGCCGAAGTA" ^ "GTAAGTCCCTAG" ^ "TTTGAGCAGTGA") in
  let gene =
    Gene.make_exn ~id:"demo1" ~name:"demo kinase" ~exons:[ (0, 12); (24, 12) ] dna
  in
  Format.printf "%a@." Gene.pp gene;
  Printf.printf "genomic DNA : %s\n" (Sequence.to_string gene.Gene.dna);
  Printf.printf "exons       : %s\n"
    (String.concat ", "
       (List.map (fun (o, l) -> Printf.sprintf "%d+%d" o l) gene.Gene.exons));
  Printf.printf "GC content  : %.2f\n" (Ops.gc_content gene.Gene.dna);

  section "The central dogma, one operator at a time";
  let primary = Ops.transcribe gene in
  Format.printf "transcribe  : %a@." Transcript.pp_primary primary;
  let mrna = Ops.splice primary in
  Format.printf "splice      : %a@." Transcript.pp_mrna mrna;
  Printf.printf "mRNA        : %s\n" (Sequence.to_string mrna.Transcript.rna);
  (match Ops.translate mrna with
  | Ok protein ->
      Format.printf "translate   : %a@." Protein.pp protein;
      Printf.printf "residues    : %s\n" (Sequence.to_string protein.Protein.residues);
      Printf.printf "weight      : %.1f Da\n" (Protein.molecular_weight protein)
  | Error msg -> Printf.printf "translate failed: %s\n" msg);

  section "The same pipeline as an algebra term";
  let term =
    Term.app "translate"
      [ Term.app "splice" [ Term.app "transcribe" [ Term.const (Value.VGene gene) ] ] ]
  in
  Printf.printf "term        : %s\n" (Term.to_string term);
  let sg = Genalg_core.Builtin.default in
  (match Term.sort_check_closed sg term with
  | Ok sort -> Printf.printf "sort        : %s\n" (Sort.to_string sort)
  | Error msg -> Printf.printf "ill-sorted: %s\n" msg);
  (match Term.eval_closed sg term with
  | Ok v -> Printf.printf "value       : %s\n" (Value.to_display_string v)
  | Error msg -> Printf.printf "eval failed: %s\n" msg);

  section "Uncertainty (paper section 4.3)";
  (* a three-exon transcript admits exon-skipping alternatives *)
  let rng = Genalg_synth.Rng.make 2003 in
  let gene3 = Genalg_synth.Genegen.gene rng ~exon_count:3 ~id:"demo3" () in
  let u = Ops.splice_uncertain (Ops.transcribe gene3) in
  List.iteri
    (fun i (alt : Transcript.mrna Uncertain.alternative) ->
      Printf.printf "  splicing %d: %d nt @ confidence %.2f\n" (i + 1)
        (Transcript.mrna_length alt.Uncertain.value)
        alt.Uncertain.confidence)
    (Uncertain.alternatives u);

  section "Sequence analysis operators";
  let genome_piece = Genalg_synth.Seqgen.dna rng 600 in
  let orfs = Ops.find_orfs ~min_length:60 genome_piece in
  Printf.printf "ORFs >= 60nt in 600bp of random DNA: %d\n" (List.length orfs);
  (match orfs with
  | best :: _ ->
      Printf.printf "longest ORF: %d nt -> %s...\n" best.Ops.length
        (let p = Ops.orf_protein genome_piece best in
         Sequence.to_string (Sequence.sub p ~pos:0 ~len:(min 20 (Sequence.length p))))
  | [] -> ());
  let ecori = Option.get (Ops.enzyme_by_name "EcoRI") in
  Printf.printf "EcoRI fragments of that piece: %d\n"
    (List.length (Ops.digest ecori genome_piece));

  section "Extensibility (paper C13/C14)";
  let my_sig = Genalg_core.Builtin.create () in
  Signature.register_exn my_sig
    {
      Signature.name = "at_content";
      arg_sorts = [ Sort.Dna ];
      result_sort = Sort.Float;
      doc = "user-defined: fraction of A/T bases";
      impl =
        (function
        | [ Value.VDna s ] -> Ok (Value.VFloat (1. -. Ops.gc_content s))
        | _ -> assert false);
    };
  (match Signature.apply my_sig "at_content" [ Value.dna "AATTGG" ] with
  | Ok v -> Printf.printf "at_content(AATTGG) = %s\n" (Value.to_display_string v)
  | Error msg -> print_endline msg);
  Printf.printf "operators now in the signature: %d\n" (Signature.cardinal my_sig);

  section "GenAlgXML input/output (paper section 6.4)";
  let xml = Genalg_xml.Genalgxml.to_string (Value.VGene gene) in
  Printf.printf "%s" xml;
  match Genalg_xml.Genalgxml.of_string xml with
  | Ok v2 ->
      Printf.printf "round-trip equal: %b\n" (Value.equal (Value.VGene gene) v2)
  | Error msg -> Printf.printf "round-trip failed: %s\n" msg
