(* The Unifying Database end to end (paper Figure 3).

   Three heterogeneous repositories — a GenBank-style flat-file bank with
   a change log, a queryable relational bank, and a non-queryable
   hierarchical (AceDB-like) bank — are monitored, wrapped, reconciled
   and loaded into one warehouse, then queried in extended SQL and in the
   biological query language; finally the sources change and a manual
   refresh propagates the deltas incrementally.

   Run with: dune exec examples/warehouse_pipeline.exe *)


open Genalg_etl
module Exec = Genalg_sqlx.Exec
module Biolang = Genalg_biolang.Biolang

let section title = Printf.printf "\n== %s ==\n" title

let run_sql db sql =
  Printf.printf "sql> %s\n" sql;
  match Exec.query db ~actor:"biologist" sql with
  | Ok (Exec.Rows rs) -> print_endline (Exec.render db rs)
  | Ok (Exec.Affected n) -> Printf.printf "(%d rows affected)\n" n
  | Ok Exec.Executed -> print_endline "ok"
  | Error msg -> Printf.printf "error: %s\n" msg

let run_bio db q =
  Printf.printf "bio> %s\n" q;
  (match Biolang.compile_to_sql q with
  | Ok sql -> Printf.printf "  -> %s\n" sql
  | Error msg -> Printf.printf "  compile error: %s\n" msg);
  match Biolang.run db ~actor:"biologist" q with
  | Ok (Exec.Rows rs) -> print_endline (Exec.render db rs)
  | Ok _ -> ()
  | Error msg -> Printf.printf "error: %s\n" msg

let () =
  let rng = Genalg_synth.Rng.make 20030101 in

  section "Three heterogeneous repositories";
  (* two of them share half their content, with noisy copies (B10) *)
  let repo_a, repo_b, pairs =
    Genalg_synth.Recordgen.overlapping_repositories rng ~size:30 ~overlap:0.4
      ~noise_fraction:0.45 ()
  in
  let repo_c = Genalg_synth.Recordgen.repository rng ~size:15 ~prefix:"CCC" () in
  let src_a = Source.create ~name:"synthbank" Source.Logged Source.Flat_file repo_a in
  let src_b = Source.create ~name:"relbank" Source.Queryable Source.Relational repo_b in
  let src_c =
    Source.create ~name:"acebank" Source.Non_queryable Source.Hierarchical repo_c
  in
  List.iter
    (fun src ->
      let tech =
        Option.get
          (Monitor.technique_for (Source.capability src) (Source.representation src))
      in
      Printf.printf "  %-10s %-14s -> change detection: %s\n" (Source.name src)
        (match Source.representation src with
        | Source.Flat_file -> "flat file"
        | Source.Relational -> "relational"
        | Source.Hierarchical -> "hierarchical")
        (Monitor.technique_to_string tech))
    [ src_a; src_b; src_c ];
  Printf.printf "  ground truth: %d records exist in both synthbank and relbank\n"
    (List.length pairs);

  section "Bootstrap: extract, reconcile, load";
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b; src_c ] ()) in
  let stats = Result.get_ok (Pipeline.bootstrap pl) in
  Printf.printf
    "loaded: %d merged records, %d genes, %d proteins (decoded at load), %d conflict rows\n"
    stats.Loader.entries stats.Loader.genes stats.Loader.proteins
    stats.Loader.conflicts;
  Printf.printf "(75 raw records, %d cross-source duplicates merged away)\n"
    (75 - stats.Loader.entries);
  let db = Pipeline.database pl in

  section "Extended SQL with genomic operators (paper 6.3)";
  run_sql db "SELECT count(*) FROM sequences";
  run_sql db
    "SELECT source, count(*) AS records, avg(length) AS mean_len FROM sequences GROUP BY source ORDER BY source";
  run_sql db
    "SELECT accession, length, gc FROM sequences WHERE gc > 0.55 ORDER BY gc DESC LIMIT 5";
  (* the paper's own example query, section 6.3 *)
  run_sql db "SELECT accession FROM sequences WHERE contains(seq, 'ATTGCCATA')";

  section "Genomic indexes and statistics (paper 6.5)";
  run_sql db "CREATE GENOMIC INDEX ON sequences (seq)";
  run_sql db "ANALYZE sequences";
  Printf.printf "(contains() below is served from the k-mer index, not a scan)\n";
  run_sql db "SELECT count(*) FROM sequences WHERE contains(seq, 'ATTGCCATA')";

  section "The biological query language (paper 6.4)";
  run_bio db "count sequences where organism is 'Synthetica primus'";
  run_bio db "find genes where exon count at least 1 limit 3";
  run_bio db "count sequences where gc content above 0.5";
  run_bio db "find proteins sorted by weight descending limit 3";

  section "Conflicting sources preserved as alternatives (C9)";
  run_sql db "SELECT count(*) FROM sequences WHERE consistent = FALSE";
  run_sql db
    "SELECT accession, rank, confidence, source FROM conflicts ORDER BY accession, rank LIMIT 6";

  section "Self-generated data in the user space (C13)";
  run_sql db "CREATE TABLE my_observations (accession string, phenotype string)";
  run_sql db "INSERT INTO my_observations VALUES ('AAA000001', 'cold-sensitive')";
  run_sql db
    "SELECT s.accession, m.phenotype, s.length FROM sequences s, my_observations m WHERE s.accession = m.accession";

  section "Sources change; a manual refresh propagates deltas";
  let _, ups_a = Genalg_synth.Recordgen.update_stream rng repo_a ~fraction:0.15 () in
  let _, ups_c = Genalg_synth.Recordgen.update_stream rng repo_c ~fraction:0.2 () in
  let as_source_updates =
    List.map (function
      | Genalg_synth.Recordgen.Insert e -> Source.Insert e
      | Genalg_synth.Recordgen.Delete a -> Source.Delete a
      | Genalg_synth.Recordgen.Modify e -> Source.Modify e)
  in
  Source.apply src_a (as_source_updates ups_a);
  Source.apply src_c (as_source_updates ups_c);
  Printf.printf "applied %d updates to synthbank, %d to acebank\n" (List.length ups_a)
    (List.length ups_c);
  let rstats, deltas = Result.get_ok (Pipeline.refresh pl) in
  Printf.printf "refresh detected %d deltas; %d rows rewritten\n" deltas
    rstats.Loader.entries;
  run_sql db "SELECT count(*) FROM sequences";
  Printf.printf "replaced/deleted records keep their a-priori data (C15):\n";
  run_sql db
    "SELECT accession, version, replaced_at FROM history ORDER BY replaced_at LIMIT 5";

  section "Snapshot persistence";
  let path = Filename.temp_file "genalg_example" ".db" in
  (match Genalg_storage.Database.save db path with
  | Ok () ->
      Printf.printf "warehouse saved to %s (%d bytes)\n" path
        (let ic = open_in_bin path in
         let n = in_channel_length ic in
         close_in ic;
         n)
  | Error msg -> Printf.printf "save failed: %s\n" msg);
  Sys.remove path
