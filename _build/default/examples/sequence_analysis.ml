(* Sequence analysis at genome scale: the workloads the paper's intro
   motivates — gene finding, translation, similarity search, and the
   genomic index structures of section 6.5.

   Run with: dune exec examples/sequence_analysis.exe *)

open Genalg_gdt
module Ops = Genalg_core.Ops
module Seqgen = Genalg_synth.Seqgen
module Genegen = Genalg_synth.Genegen

let section title = Printf.printf "\n== %s ==\n" title
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rng = Genalg_synth.Rng.make 424242 in

  section "A synthetic genome";
  let genome =
    Genegen.genome rng ~chromosome_count:2 ~genes_per_chromosome:12
      ~organism:"Synthetica exempli" ()
  in
  Format.printf "%a@." Genome.pp genome;
  List.iter (fun c -> Format.printf "  %a@." Chromosome.pp c) genome.Genome.chromosomes;

  section "Decoding every annotated gene (central dogma at scale)";
  let chrom = List.hd genome.Genome.chromosomes in
  let decoded = ref 0 and failures = ref 0 in
  List.iter
    (fun f ->
      match Genalg_etl.Wrapper.gene_of_cds
              (Genalg_formats.Entry.make ~accession:chrom.Chromosome.name
                 chrom.Chromosome.dna)
              f ~id:(Option.value (Feature.name f) ~default:"?")
      with
      | Some gene -> (
          match Ops.decode gene with
          | Ok _ -> incr decoded
          | Error _ -> incr failures)
      | None -> incr failures)
    (Chromosome.features_of_kind chrom Feature.Cds);
  Printf.printf "decoded %d/%d CDS features to proteins\n" !decoded (!decoded + !failures);

  section "ORF finding on raw sequence";
  let orfs, dt = time (fun () -> Ops.find_orfs ~min_length:300 chrom.Chromosome.dna) in
  Printf.printf "ORFs >= 300nt on both strands of %d bp: %d (%.1f ms)\n"
    (Chromosome.length chrom) (List.length orfs) (dt *. 1000.);

  section "Motif search: naive scan vs genomic indexes (paper 6.5)";
  let text = Sequence.to_string chrom.Chromosome.dna in
  let motif = String.sub text (String.length text / 2) 16 in
  Printf.printf "searching for the 16-mer %s\n" motif;
  let naive_hits, naive_t =
    time (fun () -> Genalg_seqindex.Search.naive_find_all ~pattern:motif text)
  in
  let idx, build_t = time (fun () -> Genalg_seqindex.Kmer_index.build ~k:12 text) in
  let kmer_hits, kmer_t = time (fun () -> Genalg_seqindex.Kmer_index.find_all idx motif) in
  let sa, sa_build_t = time (fun () -> Genalg_seqindex.Suffix_array.build text) in
  let sa_hits, sa_t = time (fun () -> Genalg_seqindex.Suffix_array.find_all sa motif) in
  Printf.printf "  naive scan   : %d hits in %.3f ms\n" (List.length naive_hits)
    (naive_t *. 1000.);
  Printf.printf "  k-mer index  : %d hits in %.3f ms (build %.1f ms)\n"
    (List.length kmer_hits) (kmer_t *. 1000.) (build_t *. 1000.);
  Printf.printf "  suffix array : %d hits in %.3f ms (build %.1f ms)\n"
    (List.length sa_hits) (sa_t *. 1000.) (sa_build_t *. 1000.);

  section "Similarity search: resembles, Smith-Waterman and BLAST-like";
  (* build a database of gene sequences and search with a diverged copy *)
  let genes =
    List.concat_map
      (fun c -> List.map snd (Chromosome.genes c))
      genome.Genome.chromosomes
  in
  let db_entries =
    List.mapi (fun i s -> (Printf.sprintf "gene%02d" i, Sequence.to_string s)) genes
  in
  let blast_db = Genalg_align.Blast.make_db ~k:11 db_entries in
  let target = List.nth genes 3 in
  let homolog = Seqgen.homolog rng ~identity:0.85 target in
  Printf.printf "query: %d nt homolog of gene03 at ~85%% identity\n"
    (Sequence.length homolog);
  let hits, blast_t =
    time (fun () ->
        Genalg_align.Blast.search ~min_score:24 blast_db
          ~query:(Sequence.to_string homolog))
  in
  (match hits with
  | best :: _ ->
      Printf.printf "  BLAST-like  : top hit %s (score %d) in %.2f ms\n"
        best.Genalg_align.Blast.subject_id best.Genalg_align.Blast.score
        (blast_t *. 1000.)
  | [] -> Printf.printf "  BLAST-like  : no hits\n");
  let r, resemble_t = time (fun () -> Ops.resembles homolog target) in
  Printf.printf "  resembles(q, gene03) = %.2f (exact local alignment, %.1f ms)\n" r
    (resemble_t *. 1000.);

  section "A detailed pairwise alignment";
  let a = Sequence.sub target ~pos:0 ~len:(min 60 (Sequence.length target)) in
  let b = Seqgen.mutate rng ~rate:0.08 a in
  let aln =
    Genalg_align.Pairwise.align_seq ~mode:Genalg_align.Pairwise.Global ~query:a
      ~subject:b ()
  in
  Format.printf "%a@." Genalg_align.Pairwise.pp aln;

  section "Restriction mapping";
  List.iter
    (fun enz ->
      let sites = Ops.restriction_sites enz chrom.Chromosome.dna in
      Printf.printf "  %-8s (%s): %d sites\n" enz.Ops.name enz.Ops.site
        (List.length sites))
    Ops.common_enzymes
