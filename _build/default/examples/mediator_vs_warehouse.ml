(* Query-driven integration (Figure 1) vs the Unifying Database: the
   architectural comparison the paper argues from (sections 3 and 5).

   The same biological question is answered through (a) a mediator that
   ships data from every source per query and reconciles client-side, and
   (b) a warehouse that paid the integration cost once at load time.

   Run with: dune exec examples/mediator_vs_warehouse.exe *)

open Genalg_formats
open Genalg_etl
module Mediator = Genalg_mediator.Mediator
module Exec = Genalg_sqlx.Exec
module D = Genalg_storage.Dtype

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rng = Genalg_synth.Rng.make 555 in

  Printf.printf "building 4 repositories of 150 records each...\n";
  let repos =
    List.init 4 (fun i ->
        Genalg_synth.Recordgen.repository rng ~size:150
          ~prefix:(Printf.sprintf "RP%d" i) ())
  in
  let make_sources () =
    List.mapi
      (fun i repo ->
        Source.create
          ~name:(Printf.sprintf "bank-%d" i)
          Source.Queryable
          (if i mod 2 = 0 then Source.Hierarchical else Source.Relational)
          repo)
      repos
  in

  (* ---- architecture A: query-driven mediation ---------------------- *)
  let mediator = Mediator.create ~latency_s:0.03 (make_sources ()) in
  let organism = (List.hd (List.hd repos)).Entry.organism in
  let query =
    { Mediator.organism = Some organism; min_length = Some 900; contains_motif = None }
  in
  Printf.printf "\nquery: organism = %S AND length >= 900\n\n" organism;

  let (med_results, med_timing), med_compute = time (fun () -> Mediator.run mediator query) in
  Printf.printf "mediator (Figure 1):\n";
  Printf.printf "  results           : %d records\n" (List.length med_results);
  Printf.printf "  sources contacted : %d (every query)\n" med_timing.Mediator.sources_contacted;
  Printf.printf "  records shipped   : %d (re-parsed client-side)\n"
    med_timing.Mediator.records_shipped;
  Printf.printf "  simulated network : %.1f ms\n"
    (med_timing.Mediator.simulated_network_s *. 1000.);
  Printf.printf "  client compute    : %.1f ms (parse + filter + reconcile)\n"
    (med_compute *. 1000.);
  Printf.printf "  total             : %.1f ms *per query*\n"
    ((med_timing.Mediator.simulated_network_s +. med_compute) *. 1000.);

  (* ---- architecture B: the Unifying Database ------------------------ *)
  let pl = Result.get_ok (Pipeline.create ~sources:(make_sources ()) ()) in
  let _, load_time = time (fun () -> Result.get_ok (Pipeline.bootstrap pl)) in
  let db = Pipeline.database pl in
  ignore (Exec.query db ~actor:"u" "CREATE INDEX ON sequences (organism)");
  let sql =
    Printf.sprintf
      "SELECT accession FROM sequences WHERE organism = '%s' AND length >= 900" organism
  in
  let wh_results, wh_time =
    time (fun () ->
        match Exec.query db ~actor:"u" sql with
        | Ok (Exec.Rows rs) -> rs.Exec.rows
        | _ -> [])
  in
  Printf.printf "\nwarehouse (Figure 3):\n";
  Printf.printf "  one-time ETL load : %.1f ms (amortized across all queries)\n"
    (load_time *. 1000.);
  Printf.printf "  results           : %d records\n" (List.length wh_results);
  Printf.printf "  query time        : %.2f ms (indexed, local, pre-reconciled)\n"
    (wh_time *. 1000.);

  let per_query_mediator =
    (med_timing.Mediator.simulated_network_s +. med_compute) *. 1000.
  in
  Printf.printf "\nspeedup per query: %.0fx; warehouse load amortizes after %d queries\n"
    (per_query_mediator /. (wh_time *. 1000.))
    (int_of_float (ceil (load_time /. (med_timing.Mediator.simulated_network_s +. med_compute))));

  (* the two architectures agree on the answer *)
  let med_accs =
    List.map (fun (e : Entry.t) -> e.Entry.accession) med_results
    |> List.sort String.compare
  in
  let wh_accs =
    List.filter_map (fun r -> match r.(0) with D.Str s -> Some s | _ -> None) wh_results
    |> List.sort String.compare
  in
  Printf.printf "answers identical: %b\n" (med_accs = wh_accs)
