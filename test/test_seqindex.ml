(* Unit tests for the genomic index structures (lib/seqindex). *)

open Genalg_seqindex

let check = Alcotest.check
let tc = Alcotest.test_case

let text = "ACGTACGTACGTTTTACGT"

let test_naive () =
  check (Alcotest.list Alcotest.int) "all" [ 0; 4; 8; 15 ]
    (Search.naive_find_all ~pattern:"ACGT" text);
  check (Alcotest.option Alcotest.int) "first" (Some 0)
    (Search.naive_find ~pattern:"ACGT" text);
  check (Alcotest.option Alcotest.int) "from offset" (Some 4)
    (Search.naive_find ~start:1 ~pattern:"ACGT" text);
  check (Alcotest.list Alcotest.int) "absent" []
    (Search.naive_find_all ~pattern:"GGGG" text);
  check (Alcotest.list Alcotest.int) "empty pattern" []
    (Search.naive_find_all ~pattern:"" text)

let test_horspool_agrees_with_naive () =
  let rng = Genalg_synth.Rng.make 11 in
  for _ = 1 to 30 do
    let t = Genalg_synth.Seqgen.dna_string rng 300 in
    let plen = 2 + Genalg_synth.Rng.int rng 8 in
    let off = Genalg_synth.Rng.int rng (300 - plen) in
    let pattern = String.sub t off plen in
    check (Alcotest.list Alcotest.int) ("horspool = naive for " ^ pattern)
      (Search.naive_find_all ~pattern t)
      (Search.horspool_find_all ~pattern t)
  done

let test_horspool_overlapping () =
  check (Alcotest.list Alcotest.int) "overlapping occurrences" [ 0; 1; 2 ]
    (Search.horspool_find_all ~pattern:"AA" "AAAA")

let test_kmer_index () =
  let idx = Kmer_index.build ~k:4 text in
  check Alcotest.int "k" 4 (Kmer_index.k idx);
  check (Alcotest.list Alcotest.int) "find_all matches naive" [ 0; 4; 8; 15 ]
    (Kmer_index.find_all idx "ACGT");
  check (Alcotest.option Alcotest.int) "longer pattern verified" (Some 0)
    (Kmer_index.find idx "ACGTACGT");
  check Alcotest.bool "contains" true (Kmer_index.contains idx "TTTA");
  check Alcotest.bool "absent" false (Kmer_index.contains idx "GGGG");
  Alcotest.check_raises "short pattern rejected"
    (Invalid_argument "Kmer_index.find_all: pattern shorter than k") (fun () ->
      ignore (Kmer_index.find_all idx "AC"))

let test_kmer_index_ambiguous_text () =
  (* k-mers crossing an N are skipped but search falls back correctly *)
  let idx = Kmer_index.build ~k:4 "ACGTNACGT" in
  check (Alcotest.list Alcotest.int) "windows without N only" [ 0; 5 ]
    (Kmer_index.find_all idx "ACGT")

let test_kmer_index_random_agreement () =
  let rng = Genalg_synth.Rng.make 13 in
  let t = Genalg_synth.Seqgen.dna_string rng 2000 in
  let idx = Kmer_index.build ~k:8 t in
  for _ = 1 to 20 do
    let plen = 8 + Genalg_synth.Rng.int rng 12 in
    let off = Genalg_synth.Rng.int rng (2000 - plen) in
    let pattern = String.sub t off plen in
    check (Alcotest.list Alcotest.int) "kmer = naive"
      (Search.naive_find_all ~pattern t)
      (Kmer_index.find_all idx pattern)
  done

let test_suffix_array_sorted () =
  let sa = Suffix_array.build "BANANA" in
  (* suffix order: A, ANA, ANANA, BANANA, NA, NANA -> 5 3 1 0 4 2 *)
  check (Alcotest.list Alcotest.int) "banana suffixes" [ 5; 3; 1; 0; 4; 2 ]
    (Array.to_list (Suffix_array.suffixes sa))

let test_suffix_array_search () =
  let sa = Suffix_array.build text in
  check (Alcotest.list Alcotest.int) "ACGT occurrences" [ 0; 4; 8; 15 ]
    (Suffix_array.find_all sa "ACGT");
  check (Alcotest.option Alcotest.int) "leftmost" (Some 0) (Suffix_array.find sa "ACGT");
  check Alcotest.bool "contains short" true (Suffix_array.contains sa "TTT");
  check Alcotest.bool "absent" false (Suffix_array.contains sa "GGG");
  check (Alcotest.list Alcotest.int) "empty pattern" [] (Suffix_array.find_all sa "")

let test_suffix_array_random_agreement () =
  let rng = Genalg_synth.Rng.make 17 in
  let t = Genalg_synth.Seqgen.dna_string rng 1000 in
  let sa = Suffix_array.build t in
  for _ = 1 to 20 do
    let plen = 1 + Genalg_synth.Rng.int rng 12 in
    let off = Genalg_synth.Rng.int rng (1000 - plen) in
    let pattern = String.sub t off plen in
    check (Alcotest.list Alcotest.int) "sa = naive"
      (Search.naive_find_all ~pattern t)
      (Suffix_array.find_all sa pattern)
  done

(* --- edge cases: empty inputs, oversized patterns/k, ambiguity codes --- *)

let test_empty_text () =
  let idx = Kmer_index.build ~k:4 "" in
  check Alcotest.int "no k-mers in empty text" 0 (Kmer_index.distinct_kmers idx);
  check (Alcotest.list Alcotest.int) "kmer find_all" []
    (Kmer_index.find_all idx "ACGT");
  check Alcotest.bool "kmer contains" false (Kmer_index.contains idx "ACGT");
  let sa = Suffix_array.build "" in
  check (Alcotest.list Alcotest.int) "sa find_all" [] (Suffix_array.find_all sa "A");
  check Alcotest.bool "sa contains" false (Suffix_array.contains sa "A");
  check (Alcotest.list Alcotest.int) "naive" []
    (Search.naive_find_all ~pattern:"A" "");
  check (Alcotest.list Alcotest.int) "horspool" []
    (Search.horspool_find_all ~pattern:"A" "")

let test_pattern_longer_than_text () =
  let t = "ACGTACGT" in
  let long = t ^ t in
  check (Alcotest.list Alcotest.int) "naive" []
    (Search.naive_find_all ~pattern:long t);
  check (Alcotest.list Alcotest.int) "horspool" []
    (Search.horspool_find_all ~pattern:long t);
  let idx = Kmer_index.build ~k:4 t in
  check (Alcotest.list Alcotest.int) "kmer find_all" [] (Kmer_index.find_all idx long);
  check (Alcotest.option Alcotest.int) "kmer find" None (Kmer_index.find idx long);
  check (Alcotest.list Alcotest.int) "suffix array" []
    (Suffix_array.find_all (Suffix_array.build t) long)

let test_k_larger_than_text () =
  (* a k-mer index over a sequence shorter than k holds no windows at
     all but still answers (with the empty candidate set) *)
  let idx = Kmer_index.build ~k:8 "ACGT" in
  check Alcotest.int "no windows indexed" 0 (Kmer_index.distinct_kmers idx);
  check (Alcotest.list Alcotest.int) "long query finds nothing" []
    (Kmer_index.find_all idx "ACGTACGT");
  check Alcotest.bool "contains" false (Kmer_index.contains idx "ACGTACGT")

let test_ambiguity_codes () =
  (* IUPAC codes (N, R, Y, ...) are opaque letters: windows containing
     them never enter the packed k-mer table, and patterns containing
     them bypass it — but both stay findable as literal text *)
  let t = "ACGTNRYACGTNACGT" in
  let idx = Kmer_index.build ~k:4 t in
  check (Alcotest.list Alcotest.int) "pure pattern = naive"
    (Search.naive_find_all ~pattern:"ACGT" t)
    (Kmer_index.find_all idx "ACGT");
  check (Alcotest.list Alcotest.int) "pattern with codes = naive"
    (Search.naive_find_all ~pattern:"GTNR" t)
    (Kmer_index.find_all idx "GTNR");
  check (Alcotest.list Alcotest.int) "GTNR found literally" [ 2 ]
    (Kmer_index.find_all idx "GTNR");
  check Alcotest.bool "contains through the fallback" true
    (Kmer_index.contains idx "TNAC");
  let sa = Suffix_array.build t in
  check (Alcotest.list Alcotest.int) "suffix array with codes" [ 11 ]
    (Suffix_array.find_all sa "NACG");
  check (Alcotest.list Alcotest.int) "sa pure pattern = naive"
    (Search.naive_find_all ~pattern:"ACGT" t)
    (Suffix_array.find_all sa "ACGT")

let test_longest_repeat () =
  match Suffix_array.longest_repeat (Suffix_array.build "ABCDABC") with
  | Some (p1, p2, len) ->
      check Alcotest.int "repeat length" 3 len;
      check Alcotest.int "first position" 0 p1;
      check Alcotest.int "second position" 4 p2
  | None -> Alcotest.fail "expected a repeat"

let suites =
  [
    ( "seqindex.search",
      [
        tc "naive" `Quick test_naive;
        tc "horspool vs naive" `Quick test_horspool_agrees_with_naive;
        tc "horspool overlap" `Quick test_horspool_overlapping;
      ] );
    ( "seqindex.kmer",
      [
        tc "basics" `Quick test_kmer_index;
        tc "ambiguous text" `Quick test_kmer_index_ambiguous_text;
        tc "random agreement" `Quick test_kmer_index_random_agreement;
      ] );
    ( "seqindex.suffix_array",
      [
        tc "sorted" `Quick test_suffix_array_sorted;
        tc "search" `Quick test_suffix_array_search;
        tc "random agreement" `Quick test_suffix_array_random_agreement;
        tc "longest repeat" `Quick test_longest_repeat;
      ] );
    ( "seqindex.edge_cases",
      [
        tc "empty text" `Quick test_empty_text;
        tc "pattern longer than text" `Quick test_pattern_longer_than_text;
        tc "k larger than text" `Quick test_k_larger_than_text;
        tc "ambiguity codes" `Quick test_ambiguity_codes;
      ] );
  ]
