(* Cluster durability and self-healing: the coordinator manifest codec
   and its crash-safe save, the WAL applied-LSN cursor, shard resync /
   rejoin with epoch fencing, coordinator restart from a state
   directory (torn log tails included), serve-flag validation, and a
   two-server remote crash/recovery acceptance run. *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Wal = Genalg_storage.Wal
module Exec = Genalg_sqlx.Exec
module Cluster = Genalg_shard.Cluster
module Manifest = Genalg_shard.Manifest
module Fault = Genalg_fault.Fault
module Obs = Genalg_obs.Obs
module Server = Genalg_serve.Server
module Client = Genalg_serve.Client
module Proto = Genalg_serve.Protocol

let check = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected an error"

let attach db = Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default

let str_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let actor = "etl"

let with_tmp_dir f =
  let dir = Filename.temp_file "genalg_cluster" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      rm dir)
    (fun () -> f dir)

(* ---- fixture (the 33-query corpus shared with test_shard) -------------- *)

let organisms = [| "human"; "mouse"; "yeast"; "ecoli" |]

let seed_sql =
  "CREATE TABLE seqs (organism string, accession string, len int, score float, seq string)"
  :: List.concat
       (List.init 32 (fun i ->
            let org = organisms.(i mod 4) in
            let len =
              if i mod 7 = 0 then "NULL" else string_of_int (40 + (i * 3 mod 60))
            in
            let score =
              if i mod 11 = 3 then "NULL" else Printf.sprintf "%d.5" (i mod 9)
            in
            [
              Printf.sprintf
                "INSERT INTO seqs VALUES ('%s', 'ACC%04d', %s, %s, '%s')" org i
                len score
                (String.init 24 (fun j -> "ACGT".[(i + j) mod 4]));
            ]))

let run_seed runner = List.iter (fun sql -> ignore (ok (runner sql))) seed_sql

let row_bytes rows =
  String.concat "|"
    (List.map (fun r -> Bytes.to_string (D.encode_row r)) rows)

let assert_same single cl sql =
  let a = Exec.query single ~actor sql in
  let b = Cluster.query cl ~actor sql in
  match a, b with
  | Ok (Exec.Rows ra), Ok (Exec.Rows rb) ->
      check (sql ^ " [columns]")
        (String.concat "," ra.Exec.columns)
        (String.concat "," rb.Exec.columns);
      check (sql ^ " [rows]") (row_bytes ra.Exec.rows) (row_bytes rb.Exec.rows)
  | Ok (Exec.Affected na), Ok (Exec.Affected nb) -> checki sql na nb
  | Ok Exec.Executed, Ok Exec.Executed -> ()
  | Error ea, Error eb -> check (sql ^ " [error]") ea eb
  | _ -> Alcotest.failf "%s: outcomes diverge" sql

let corpus =
  [
    "SELECT * FROM seqs";
    "SELECT accession, len FROM seqs";
    "SELECT accession, len FROM seqs WHERE organism = 'human'";
    "SELECT accession FROM seqs WHERE 'mouse' = organism";
    "SELECT accession, len FROM seqs WHERE len > 50";
    "SELECT accession FROM seqs WHERE len > 50 AND organism = 'yeast'";
    "SELECT accession, score FROM seqs WHERE score <= 4.5 AND len >= 40";
    "SELECT upper(organism), strlen(seq) FROM seqs WHERE len <> 46";
    "SELECT accession FROM seqs ORDER BY accession DESC";
    "SELECT accession, len FROM seqs ORDER BY len DESC, accession ASC";
    "SELECT accession, len FROM seqs ORDER BY len ASC LIMIT 5";
    "SELECT * FROM seqs LIMIT 7";
    "SELECT accession FROM seqs WHERE organism = 'nope'";
    "SELECT count(*) FROM seqs";
    "SELECT count(len) FROM seqs";
    "SELECT sum(len), min(len), max(len), avg(len) FROM seqs";
    "SELECT sum(score), avg(score) FROM seqs WHERE organism = 'human'";
    "SELECT count(*) FROM seqs WHERE organism = 'nope'";
    "SELECT sum(len) FROM seqs WHERE organism = 'nope'";
    "SELECT organism, count(*) FROM seqs GROUP BY organism";
    "SELECT organism, sum(len), avg(score) FROM seqs GROUP BY organism";
    "SELECT organism, count(*) FROM seqs GROUP BY organism HAVING count(*) > 7";
    "SELECT organism, min(accession) FROM seqs GROUP BY organism ORDER BY count(*) DESC, organism ASC";
    "SELECT organism, sum(len) + 1 FROM seqs GROUP BY organism ORDER BY organism";
    "SELECT upper(organism), count(*) FROM seqs GROUP BY upper(organism) ORDER BY upper(organism)";
    "SELECT organism FROM seqs WHERE len > 90 GROUP BY organism";
    "SELECT count(*) + 1 FROM seqs WHERE organism = 'nope'";
    "SELECT nosuch FROM seqs";
    "SELECT accession FROM nosuchtable";
    "SELECT sum(organism) FROM seqs";
    "SELECT organism FROM seqs GROUP BY organism HAVING sum(len)";
    "SELECT a.accession, b.accession FROM seqs a, seqs b WHERE a.len = b.len AND a.organism = 'yeast' ORDER BY a.accession, b.accession LIMIT 10";
  ]

let fresh_single () =
  let single = Db.create () in
  attach single;
  run_seed (Exec.query single ~actor);
  single

let all_serving cl =
  Array.for_all (fun s -> s = Cluster.Serving) (Cluster.shard_states cl)

(* drive read probes until every member rejoined (breaker half-open
   pacing means a few reads may pass before a probe is granted) *)
let heal cl =
  let rec go n =
    if n = 0 then Alcotest.fail "cluster did not heal"
    else begin
      ignore (Cluster.query cl ~actor "SELECT count(*) FROM seqs");
      if not (all_serving cl) then go (n - 1)
    end
  in
  if not (all_serving cl) then go 50

(* ---- manifest codec ---------------------------------------------------- *)

let mf_local =
  {
    Manifest.topology = Manifest.Local { shards = 3; replicas = true };
    pcols = [ ("genes", "organism"); ("seqs", "organism") ];
    next_seq = 42;
    log_base = 7;
    shards =
      [
        { Manifest.epoch = 2; primary_applied = 41; replica_applied = Some 40 };
        { Manifest.epoch = 0; primary_applied = 41; replica_applied = Some 41 };
        { Manifest.epoch = 1; primary_applied = 39; replica_applied = None };
      ];
  }

let mf_remote =
  {
    Manifest.topology =
      Manifest.Remote
        {
          actor = "etl";
          sockets = [ "/tmp/s0.sock"; "/tmp/s1.sock" ];
          replicas = [];
        };
    pcols = [];
    next_seq = 1;
    log_base = 0;
    shards =
      [
        { Manifest.epoch = 0; primary_applied = 0; replica_applied = None };
        { Manifest.epoch = 3; primary_applied = 17; replica_applied = None };
      ];
  }

let test_manifest_roundtrip () =
  List.iter
    (fun mf ->
      match Manifest.decode (Manifest.encode mf) with
      | Ok mf' -> checkb "decode(encode) = id" true (mf = mf')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    [ mf_local; mf_remote ]

let test_manifest_corruption () =
  let raw = Manifest.encode mf_local in
  (* bad magic *)
  let bad = Bytes.of_string raw in
  Bytes.set bad 0 'X';
  checkb "bad magic rejected" true
    (Result.is_error (Manifest.decode (Bytes.to_string bad)));
  (* flip one body byte: CRC must catch it *)
  let flipped = Bytes.of_string raw in
  let pos = String.length raw - 3 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0xff));
  let e = err (Manifest.decode (Bytes.to_string flipped)) in
  checkb "checksum mismatch reported" true (str_contains e "checksum");
  (* truncated body *)
  checkb "truncation rejected" true
    (Result.is_error
       (Manifest.decode (String.sub raw 0 (String.length raw - 4))))

let test_manifest_save_load () =
  with_tmp_dir (fun dir ->
      check "fresh dir has no manifest" "none"
        (match ok (Manifest.load ~dir) with None -> "none" | Some _ -> "some");
      ok (Manifest.save mf_local ~dir);
      (match ok (Manifest.load ~dir) with
      | Some mf -> checkb "load = saved" true (mf = mf_local)
      | None -> Alcotest.fail "manifest missing after save");
      (* a newer save atomically replaces the old one *)
      ok (Manifest.save mf_remote ~dir);
      (match ok (Manifest.load ~dir) with
      | Some mf -> checkb "replaced" true (mf = mf_remote)
      | None -> Alcotest.fail "manifest missing after resave");
      (* a stray tmp from an interrupted save is swept *)
      let tmp = Manifest.path dir ^ ".tmp" in
      Out_channel.with_open_bin tmp (fun oc -> output_string oc "junk");
      (match ok (Manifest.load ~dir) with
      | Some mf -> checkb "tmp ignored" true (mf = mf_remote)
      | None -> Alcotest.fail "manifest missing");
      checkb "stray tmp removed" false (Sys.file_exists tmp))

(* ---- WAL applied-LSN cursor -------------------------------------------- *)

let test_wal_markers_and_cursor () =
  with_tmp_dir (fun dir ->
      let file = Filename.concat dir "cursor.wal" in
      let w = ok (Wal.open_ file) in
      let stmt txn sql =
        Wal.append_begin w ~txn;
        Wal.append_stmt w ~txn ~actor:"a" ~sql;
        Wal.append_marker w ~txn ~lsn:txn;
        Wal.append_commit w ~txn
      in
      stmt 1 "one";
      stmt 2 "two";
      stmt 3 "three";
      (* txn 4 never commits: its statement and marker must not count *)
      Wal.append_begin w ~txn:4;
      Wal.append_stmt w ~txn:4 ~actor:"a" ~sql:"four";
      Wal.append_marker w ~txn:4 ~lsn:4;
      ok (Wal.flush w);
      Wal.close w;
      let rp = ok (Wal.replay file) in
      checki "committed statements" 3 (List.length rp.Wal.committed);
      checki "uncommitted statements discarded" 1 rp.Wal.discarded;
      check "last_lsn is highest committed marker" "3"
        (match rp.Wal.last_lsn with Some l -> string_of_int l | None -> "-");
      let from1 = ok (Wal.replay_from file ~lsn:1) in
      check "cursor skips txns <= lsn" "two,three"
        (String.concat ","
           (List.map (fun s -> s.Wal.rp_sql) from1.Wal.committed));
      check "last_lsn still reflects the whole log" "3"
        (match from1.Wal.last_lsn with Some l -> string_of_int l | None -> "-");
      let from3 = ok (Wal.replay_from file ~lsn:3) in
      checki "empty delta" 0 (List.length from3.Wal.committed))

(* ---- serve flag validation --------------------------------------------- *)

let test_shard_topology_validation () =
  let okv id count =
    ok (Server.shard_topology ~shard_id:id ~shard_count:count)
  in
  let errv id count =
    err (Server.shard_topology ~shard_id:id ~shard_count:count)
  in
  check "standalone" "standalone" (okv None None);
  check "valid pair" "shard 2/4" (okv (Some 2) (Some 4));
  check "first of one" "shard 0/1" (okv (Some 0) (Some 1));
  checkb "id without count" true
    (str_contains (errv (Some 1) None) "--shard-count");
  checkb "count without id" true
    (str_contains (errv None (Some 3)) "--shard-id");
  checkb "count <= 0" true
    (str_contains (errv (Some 0) (Some 0)) "positive");
  checkb "negative count" true
    (str_contains (errv (Some 0) (Some (-2))) "positive");
  checkb "negative id" true
    (str_contains (errv (Some (-1)) (Some 2)) "non-negative");
  checkb "id >= count" true
    (str_contains (errv (Some 2) (Some 2)) "out of range")

(* ---- local resync / rejoin / fencing ----------------------------------- *)

let test_local_resync_rejoin () =
  Obs.set_enabled true;
  let single = fresh_single () in
  let cl = ok (Cluster.create_local ~attach ~shards:3 ()) in
  run_seed (Cluster.query cl ~actor);
  Fun.protect
    ~finally:(fun () -> Fault.disable ())
    (fun () ->
      let v name = Obs.value (Obs.counter name) in
      let bumps0 = v "shard.epoch.bumps" in
      let rejoin0 = v "shard.rejoin.count" in
      let replayed0 = v "shard.resync.replayed" in
      ok (Fault.configure "shard.0.primary:error");
      (* the first read marks the primary down and fences the pair *)
      assert_same single cl "SELECT accession FROM seqs ORDER BY accession";
      checkb "epoch bumped on primary loss" true
        (Cluster.epoch cl 0 > 0 && v "shard.epoch.bumps" > bumps0);
      checkb "shard degraded or resyncing" true (not (all_serving cl));
      (* writes while a member is down land everywhere else and are
         logged; the statement itself never fails *)
      let missed_statements = 5 in
      for i = 0 to missed_statements - 2 do
        ignore
          (ok
             (Cluster.query cl ~actor
                (Printf.sprintf
                   "INSERT INTO seqs VALUES ('human','NEW%02d',%d,1.5,'ACGT')"
                   i (100 + i))));
        ignore
          (ok
             (Exec.query single ~actor
                (Printf.sprintf
                   "INSERT INTO seqs VALUES ('human','NEW%02d',%d,1.5,'ACGT')"
                   i (100 + i))))
      done;
      ignore (ok (Cluster.query cl ~actor "DELETE FROM seqs WHERE len = 46"));
      ignore (ok (Exec.query single ~actor "DELETE FROM seqs WHERE len = 46"));
      (* fault clears; breaker probes drive resync until rejoin *)
      Fault.disable ();
      heal cl;
      checkb "member rejoined" true (v "shard.rejoin.count" > rejoin0);
      let replayed = v "shard.resync.replayed" - replayed0 in
      checkb "resync replayed something" true (replayed > 0);
      checkb "bounded: replayed <= statements missed" true
        (replayed <= missed_statements);
      (* the healed primary agrees with its replica byte-for-byte *)
      (match Cluster.primary_db cl 0, Cluster.replica_db cl 0 with
      | Some p, Some r ->
          let dump db =
            match ok (Exec.query db ~actor "SELECT * FROM seqs") with
            | Exec.Rows rs -> row_bytes rs.Exec.rows
            | _ -> ""
          in
          check "primary = replica after rejoin" (dump p) (dump r)
      | _ -> Alcotest.fail "local cluster must expose shard stores");
      List.iter (assert_same single cl) corpus)

(* ---- coordinator state directory: restart, torn tails, checkpoint ------ *)

let test_open_dir_restart () =
  with_tmp_dir (fun tmp ->
      let dir = Filename.concat tmp "coord" in
      let single = fresh_single () in
      let cl = ok (Cluster.create_local ~attach ~shards:3 ~dir ()) in
      run_seed (Cluster.query cl ~actor);
      ignore
        (ok
           (Cluster.query cl ~actor
              "INSERT INTO seqs VALUES ('mouse','RST01',88,4.5,'ACGT')"));
      ignore
        (ok
           (Exec.query single ~actor
              "INSERT INTO seqs VALUES ('mouse','RST01',88,4.5,'ACGT')"));
      Cluster.close cl;
      (* a second fresh-create on the same directory must refuse *)
      (match Cluster.create_local ~attach ~shards:3 ~dir () with
      | Ok _ -> Alcotest.fail "create_local reused a live state directory"
      | Error msg ->
          checkb "refusal names open_dir" true (str_contains msg "open_dir"));
      let cl2 = ok (Cluster.open_dir ~attach ~dir ()) in
      checkb "all shards serving after restart" true (all_serving cl2);
      List.iter (assert_same single cl2) corpus;
      (* writes keep working and LSNs stay monotone after recovery *)
      ignore
        (ok
           (Cluster.query cl2 ~actor
              "INSERT INTO seqs VALUES ('yeast','RST02',89,4.5,'ACGT')"));
      ignore
        (ok
           (Exec.query single ~actor
              "INSERT INTO seqs VALUES ('yeast','RST02',89,4.5,'ACGT')"));
      List.iter (assert_same single cl2)
        [ "SELECT count(*) FROM seqs"; "SELECT * FROM seqs" ];
      Cluster.close cl2)

let test_open_dir_torn_tail () =
  with_tmp_dir (fun tmp ->
      let dir = Filename.concat tmp "coord" in
      let single = fresh_single () in
      let cl = ok (Cluster.create_local ~attach ~shards:2 ~dir ()) in
      run_seed (Cluster.query cl ~actor);
      Cluster.close cl;
      (* tear the statement log's tail: garbage after the last record *)
      let log = Filename.concat dir "statements.log" in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 log
      in
      output_string oc "\x7f\x00garbage-torn-tail\x01\x02";
      close_out oc;
      let cl2 = ok (Cluster.open_dir ~attach ~dir ()) in
      checkb "serving after torn-tail recovery" true (all_serving cl2);
      List.iter (assert_same single cl2) corpus;
      Cluster.close cl2;
      (* the rebuilt log must replay clean (no torn flag) *)
      let rp = ok (Wal.replay log) in
      checkb "log rebuilt without tear" false rp.Wal.torn;
      (* and a second recovery still agrees *)
      let cl3 = ok (Cluster.open_dir ~attach ~dir ()) in
      List.iter (assert_same single cl3)
        [ "SELECT * FROM seqs"; "SELECT count(*) FROM seqs" ];
      Cluster.close cl3)

let test_checkpoint () =
  with_tmp_dir (fun tmp ->
      let dir = Filename.concat tmp "coord" in
      let single = fresh_single () in
      let cl = ok (Cluster.create_local ~attach ~shards:2 ~dir ()) in
      run_seed (Cluster.query cl ~actor);
      Fun.protect
        ~finally:(fun () -> Fault.disable ())
        (fun () ->
          (* a down member blocks the checkpoint: truncating the log
             would strand its replay delta *)
          ok (Fault.configure "shard.1.primary:error");
          ignore (Cluster.query cl ~actor "SELECT count(*) FROM seqs");
          let e = err (Cluster.checkpoint cl) in
          checkb "checkpoint refused while degraded" true
            (str_contains e "not serving");
          Fault.disable ();
          heal cl;
          ok (Cluster.checkpoint cl);
          let rp = ok (Wal.replay (Filename.concat dir "statements.log")) in
          checki "log truncated at checkpoint" 0 (List.length rp.Wal.committed);
          Cluster.close cl;
          (* recovery now comes purely from the checkpoint images *)
          let cl2 = ok (Cluster.open_dir ~attach ~dir ()) in
          checkb "serving after image-only recovery" true (all_serving cl2);
          List.iter (assert_same single cl2) corpus;
          Cluster.close cl2))

(* A crash at any step of the staged checkpoint protocol (after the
   images are staged / after the manifest commit / after the promotion,
   before the log truncates) must recover byte-identical: the log's
   statements are replayed exactly once over whatever images survived.
   The promote cell is the classic double-apply window — fully
   checkpointed images plus an intact statement log. *)
let test_checkpoint_crash_atomic () =
  List.iter
    (fun cp ->
      with_tmp_dir (fun tmp ->
          let dir = Filename.concat tmp "coord" in
          let single = fresh_single () in
          let cl = ok (Cluster.create_local ~attach ~shards:2 ~dir ()) in
          run_seed (Cluster.query cl ~actor);
          ok (Fault.configure (cp ^ ":crash"));
          (match Cluster.checkpoint cl with
          | exception Fault.Crash_point site ->
              check "crashed at the configured step" cp site
          | Ok () -> Alcotest.fail "checkpoint survived its crash point"
          | Error e -> Alcotest.failf "checkpoint failed oddly: %s" e);
          Fault.disable ();
          (* the coordinator is dead; recovery must settle the
             interrupted checkpoint and replay each statement once *)
          let cl2 = ok (Cluster.open_dir ~attach ~dir ()) in
          checkb (cp ^ ": serving after recovery") true (all_serving cl2);
          List.iter (assert_same single cl2) corpus;
          (* no staged leftovers survive recovery *)
          Array.iter
            (fun name ->
              checkb (cp ^ ": staged file swept: " ^ name) false
                (str_contains name ".ckpt-"))
            (Sys.readdir dir);
          (* the next checkpoint completes and recovery still agrees *)
          ignore
            (ok
               (Cluster.query cl2 ~actor
                  "INSERT INTO seqs VALUES ('human','CKP01',77,3.5,'ACGT')"));
          ignore
            (ok
               (Exec.query single ~actor
                  "INSERT INTO seqs VALUES ('human','CKP01',77,3.5,'ACGT')"));
          ok (Cluster.checkpoint cl2);
          Cluster.close cl2;
          let cl3 = ok (Cluster.open_dir ~attach ~dir ()) in
          List.iter (assert_same single cl3) corpus;
          Cluster.close cl3))
    [
      "shard.checkpoint.stage";
      "shard.checkpoint.commit";
      "shard.checkpoint.promote";
    ]

(* A failed statement-log flush must fail the statement before any
   member applies it (an undurable LSN could be re-assigned after a
   restart) and wedge the coordinator against further writes until the
   state directory is reopened. *)
let test_log_flush_failure_wedges () =
  with_tmp_dir (fun tmp ->
      let dir = Filename.concat tmp "coord" in
      let single = fresh_single () in
      let cl = ok (Cluster.create_local ~attach ~shards:2 ~dir ()) in
      run_seed (Cluster.query cl ~actor);
      let shard_rows () =
        List.fold_left
          (fun acc i ->
            match Cluster.primary_db cl i with
            | Some db -> (
                match ok (Exec.query db ~actor "SELECT count(*) FROM seqs") with
                | Exec.Rows { Exec.rows = [ [| D.Int n |] ]; _ } -> acc + n
                | _ -> Alcotest.fail "count query")
            | None -> Alcotest.fail "local cluster must expose shard stores")
          0 [ 0; 1 ]
      in
      let before = shard_rows () in
      ok (Fault.configure "shard.log.flush:error");
      let e =
        err
          (Cluster.query cl ~actor
             "INSERT INTO seqs VALUES ('human','WDG01',50,1.5,'ACGT')")
      in
      checkb "flush failure fails the statement" true
        (str_contains e "statement log");
      Fault.disable ();
      checki "no member applied the undurable statement" before (shard_rows ());
      (* wedged: the log is healthy again but writes stay refused, and
         so does checkpoint (its images would launder the mirror's
         undurable extra statement into the checkpoint) *)
      let e2 =
        err
          (Cluster.query cl ~actor
             "INSERT INTO seqs VALUES ('human','WDG02',51,1.5,'ACGT')")
      in
      checkb "wedged against further writes" true
        (str_contains e2 "statement log");
      checkb "checkpoint refused while wedged" true
        (Result.is_error (Cluster.checkpoint cl));
      (match ok (Cluster.query cl ~actor "SELECT count(*) FROM seqs") with
      | Exec.Rows _ -> ()
      | _ -> Alcotest.fail "reads must keep serving while wedged");
      (* reopening re-derives state from the durable log: the failed
         statement is gone everywhere and writes work again *)
      let cl2 = ok (Cluster.open_dir ~attach ~dir ()) in
      List.iter (assert_same single cl2) corpus;
      ignore
        (ok
           (Cluster.query cl2 ~actor
              "INSERT INTO seqs VALUES ('human','WDG03',52,1.5,'ACGT')"));
      ignore
        (ok
           (Exec.query single ~actor
              "INSERT INTO seqs VALUES ('human','WDG03',52,1.5,'ACGT')"));
      List.iter (assert_same single cl2)
        [ "SELECT count(*) FROM seqs"; "SELECT * FROM seqs" ];
      Cluster.close cl2)

(* '@' prefixes the statement log's routing records; an actor that
   starts with one would make logged originals parse as routed records
   during recovery, so it is refused at the coordinator entry *)
let test_reserved_actor_refused () =
  let cl = ok (Cluster.create_local ~attach ~shards:2 ()) in
  run_seed (Cluster.query cl ~actor);
  let e = err (Cluster.query cl ~actor:"@0:etl" "SELECT * FROM seqs") in
  checkb "read under a reserved actor refused" true (str_contains e "reserved");
  let e2 =
    err
      (Cluster.query cl ~actor:"@etl"
         "INSERT INTO seqs VALUES ('human','RSV01',1,1.0,'A')")
  in
  checkb "write under a reserved actor refused" true
    (str_contains e2 "reserved")

(* ---- remote acceptance: crash a shard server AND the coordinator ------- *)

let topology2 i = Printf.sprintf "shard %d/2" i

let start_server dir i =
  let db_path = Filename.concat dir (Printf.sprintf "s%d.db" i) in
  let socket = Filename.concat dir (Printf.sprintf "s%d.sock" i) in
  if not (Sys.file_exists db_path) then begin
    let db = Db.create () in
    ok (Db.save db db_path)
  end;
  let config =
    {
      (Server.default_config ~socket_path:socket) with
      Server.metrics = false;
      attach;
      topology = topology2 i;
    }
  in
  let server = ok (Server.create config ~db_path) in
  let dom = Domain.spawn (fun () -> Server.serve server) in
  let rec wait_ready n =
    if n = 0 then Alcotest.fail "shard server did not come up"
    else
      match Client.connect ~actor:"probe" ~socket () with
      | Ok c -> Client.close c
      | Error _ ->
          Unix.sleepf 0.02;
          wait_ready (n - 1)
  in
  wait_ready 200;
  (socket, server, dom)

let stop_server (_, server, dom) =
  Server.stop server;
  match Domain.join dom with Ok () -> () | Error _ -> ()

let test_remote_crash_recovery () =
  Obs.set_enabled true;
  with_tmp_dir (fun dir ->
      let state = Filename.concat dir "coord" in
      let s0 = ref (start_server dir 0) in
      let s1 = start_server dir 1 in
      Fun.protect
        ~finally:(fun () ->
          stop_server !s0;
          stop_server s1)
        (fun () ->
          let sockets =
            [ (let s, _, _ = !s0 in s); (let s, _, _ = s1 in s) ]
          in
          let single = fresh_single () in
          let cl =
            ok (Cluster.create_remote ~attach ~actor ~dir:state ~sockets ())
          in
          run_seed (Cluster.query cl ~actor);
          List.iter (assert_same single cl) corpus;
          (* ---- kill shard 0's primary mid-workload ---- *)
          stop_server !s0;
          let statements_while_down = ref 0 in
          let both_on cl sql =
            incr statements_while_down;
            ignore (ok (Cluster.query cl ~actor sql));
            ignore (ok (Exec.query single ~actor sql))
          in
          let both = both_on cl in
          (* this read cannot reach shard 0: it falls back to the
             mirror, marks the member down and bumps the epoch *)
          assert_same single cl "SELECT accession FROM seqs ORDER BY accession";
          checkb "failover fenced the pair" true (Cluster.epoch cl 0 > 0);
          for i = 0 to 5 do
            both
              (Printf.sprintf
                 "INSERT INTO seqs VALUES ('ecoli','DWN%02d',%d,2.5,'ACGT')" i
                 (60 + i))
          done;
          both "DELETE FROM seqs WHERE len = 43";
          let epoch_after_failover = Cluster.epoch cl 0 in
          (* ---- now the coordinator dies too (no clean close) ---- *)
          let replayed0 = Obs.value (Obs.counter "shard.resync.replayed") in
          (* reopen while shard 0's server is still gone: recovery must
             not depend on the dead server — the coordinator comes back
             degraded, answers the corpus from the mirror and keeps
             taking writes for the detached shard to catch up on *)
          let cl2 = ok (Cluster.open_dir ~attach ~dir:state ()) in
          checkb "degraded open: shard 0 not serving" true
            ((Cluster.shard_states cl2).(0) <> Cluster.Serving);
          List.iter (assert_same single cl2) corpus;
          both_on cl2
            "INSERT INTO seqs VALUES ('ecoli','DEG01',70,2.0,'ACGTACGT')";
          (* the server returns: breaker probes re-dial the remembered
             socket and the shard rejoins with the full delta *)
          s0 := start_server dir 0;
          heal cl2;
          checkb "every shard back in serving" true (all_serving cl2);
          checkb "recovered coordinator kept the fencing epoch" true
            (Cluster.epoch cl2 0 >= epoch_after_failover);
          let replayed =
            Obs.value (Obs.counter "shard.resync.replayed") - replayed0
          in
          checkb "resync replayed something" true (replayed > 0);
          checkb "bounded: replayed <= statements issued while down" true
            (replayed <= !statements_while_down);
          (* the 33-query corpus is byte-identical after recovery *)
          List.iter (assert_same single cl2) corpus;
          (* ---- epoch fencing on the wire ---- *)
          let sock0 = let s, _, _ = !s0 in s in
          let c = ok (Client.connect ~actor ~socket:sock0 ()) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (* a writer still on the pre-failover epoch is refused *)
              (match
                 ok
                   (Client.fenced_query c ~epoch:0
                      "INSERT INTO seqs VALUES ('human','STALE',1,1.0,'A')")
               with
              | Proto.Error_reply { code = Proto.FENCED; _ } -> ()
              | _ -> Alcotest.fail "stale epoch write was not fenced");
              (* the current epoch is accepted *)
              (match
                 ok
                   (Client.fenced_query c ~epoch:(Cluster.epoch cl2 0)
                      "SELECT count(*) FROM seqs")
               with
              | Proto.Rows _ -> ()
              | _ -> Alcotest.fail "current epoch refused");
              (* the server reports its cluster state on the stats page *)
              checkb "stats page shows epoch and applied lsn" true
                (str_contains (ok (Client.stats c)) "cluster: epoch"));
          (* the cluster still takes writes after the double recovery *)
          both "INSERT INTO seqs VALUES ('human','POST1',90,3.5,'ACGT')";
          List.iter (assert_same single cl2)
            [ "SELECT count(*) FROM seqs"; "SELECT * FROM seqs" ];
          Cluster.close cl2))

let suites =
  [
    ( "cluster.manifest",
      [
        Alcotest.test_case "codec roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "corruption rejected" `Quick
          test_manifest_corruption;
        Alcotest.test_case "save/load atomically" `Quick
          test_manifest_save_load;
      ] );
    ( "cluster.wal-cursor",
      [
        Alcotest.test_case "markers and replay_from" `Quick
          test_wal_markers_and_cursor;
      ] );
    ( "cluster.serve-flags",
      [
        Alcotest.test_case "shard id/count validation" `Quick
          test_shard_topology_validation;
      ] );
    ( "cluster.resync",
      [
        Alcotest.test_case "down member resyncs and rejoins" `Quick
          test_local_resync_rejoin;
      ] );
    ( "cluster.durability",
      [
        Alcotest.test_case "coordinator restart from state dir" `Quick
          test_open_dir_restart;
        Alcotest.test_case "torn statement-log tail" `Quick
          test_open_dir_torn_tail;
        Alcotest.test_case "checkpoint gates and truncates" `Quick
          test_checkpoint;
        Alcotest.test_case "checkpoint crash matrix replays exactly once"
          `Quick test_checkpoint_crash_atomic;
        Alcotest.test_case "statement-log flush failure wedges writes" `Quick
          test_log_flush_failure_wedges;
        Alcotest.test_case "reserved '@' actor names refused" `Quick
          test_reserved_actor_refused;
      ] );
    ( "cluster.remote-recovery",
      [
        Alcotest.test_case "shard + coordinator crash, resync, fencing"
          `Quick test_remote_crash_recovery;
      ] );
  ]
