(* Integration tests for the caching layers (lib/cache + buffer pool +
   sqlx statement caches + mediator response cache): staleness safety
   after writes and ETL deltas, plan reuse, buffer-pool write-back. *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Buffer_pool = Genalg_storage.Buffer_pool
module Heap = Genalg_storage.Heap
module Exec = Genalg_sqlx.Exec
module Source = Genalg_etl.Source
module Monitor = Genalg_etl.Monitor
module Pipeline = Genalg_etl.Pipeline
module Mediator = Genalg_mediator.Mediator
module Obs = Genalg_obs.Obs

let check = Alcotest.check
let tc = Alcotest.test_case

(* every test runs with a clean metrics registry and clean statement
   caches, and restores the disabled default on the way out *)
let isolated f =
  Exec.clear_statement_caches ();
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false;
      Exec.clear_statement_caches ())
    f

let counter name = Obs.value (Obs.counter name)

let fixture_db () =
  let db = Db.create () in
  let run sql =
    match Exec.query db ~actor:"u" sql with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "fixture: %s: %s" sql msg
  in
  run "CREATE TABLE frag (id INT, organism STRING, len INT)";
  for i = 1 to 20 do
    run
      (Printf.sprintf "INSERT INTO frag VALUES (%d, '%s', %d)" i
         (if i mod 2 = 0 then "ecoli" else "yeast")
         (i * 50))
  done;
  db

let rows_of = function
  | Ok (Exec.Rows rs) -> rs.Exec.rows
  | Ok _ -> Alcotest.fail "expected rows"
  | Error msg -> Alcotest.fail msg

let count_of db sql =
  match rows_of (Exec.query db ~actor:"u" sql) with
  | [ [| D.Int n |] ] -> n
  | _ -> Alcotest.fail "expected a single count"

(* ---- sqlx: plan cache --------------------------------------------------- *)

let test_plan_cache_reuses_plans () =
  isolated @@ fun () ->
  let db = fixture_db () in
  Obs.reset ();
  let q = "EXPLAIN SELECT organism FROM frag WHERE len > 300" in
  let first = rows_of (Exec.query db ~actor:"u" q) in
  check Alcotest.int "first EXPLAIN misses the plan cache" 0 (counter "cache.plan.hits");
  let second = rows_of (Exec.query db ~actor:"u" q) in
  check Alcotest.int "second EXPLAIN hits the plan cache" 1 (counter "cache.plan.hits");
  check Alcotest.bool "identical EXPLAIN trees" true (first = second);
  (* the executing path shares the same cache: a plain SELECT re-plans
     nothing either *)
  ignore (rows_of (Exec.query db ~actor:"u" "SELECT organism FROM frag WHERE len > 300"));
  check Alcotest.int "SELECT reuses the explained plan" 2 (counter "cache.plan.hits")

let test_analyze_invalidates_plan_cache () =
  (* ANALYZE bumps the table's stats version; cached plans validate
     against it, so a plan built on old statistics is never served *)
  isolated @@ fun () ->
  let db = fixture_db () in
  Obs.reset ();
  let q = "EXPLAIN SELECT organism FROM frag WHERE len > 300" in
  let explain () =
    rows_of (Exec.query db ~actor:"u" q)
    |> List.map (function [| D.Str s |] -> s | _ -> "")
    |> String.concat "\n"
  in
  let before = explain () in
  ignore (explain ());
  check Alcotest.int "warm plan hit before ANALYZE" 1 (counter "cache.plan.hits");
  (match Exec.query db ~actor:"u" "ANALYZE frag" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let after = explain () in
  check Alcotest.int "ANALYZE dropped the cached plan" 1
    (counter "cache.plan.hits");
  (* the re-planned query consults the fresh statistics: the heuristic
     plan carried no estimates, the cost-based one does *)
  let has needle hay =
    let n = String.length needle and l = String.length hay in
    let rec mem i = i + n <= l && (String.sub hay i n = needle || mem (i + 1)) in
    mem 0
  in
  check Alcotest.bool "old plan had no estimates" false (has "est~" before);
  check Alcotest.bool "new plan carries estimates" true (has "est~" after);
  ignore (explain ());
  check Alcotest.int "the re-planned entry caches again" 2
    (counter "cache.plan.hits")

let test_result_cache_hit_and_stmt_cache () =
  isolated @@ fun () ->
  let db = fixture_db () in
  Obs.reset ();
  let q = "SELECT count(*)   FROM frag" (* odd spacing: normalization folds it *) in
  check Alcotest.int "cold count" 20 (count_of db q);
  check Alcotest.int "warm count identical" 20 (count_of db "SELECT count(*) FROM frag");
  check Alcotest.int "result cache hit" 1 (counter "cache.result.hits");
  check Alcotest.int "normalized text shares the parse" 1 (counter "cache.stmt.hits");
  check Alcotest.int "queries still counted on hits" 2 (counter "sqlx.queries")

(* ---- sqlx: staleness safety --------------------------------------------- *)

let test_insert_invalidates_result_cache () =
  isolated @@ fun () ->
  let db = fixture_db () in
  Obs.reset ();
  let q = "SELECT count(*) FROM frag" in
  check Alcotest.int "cold" 20 (count_of db q);
  check Alcotest.int "warm" 20 (count_of db q);
  check Alcotest.int "one hit before the write" 1 (counter "cache.result.hits");
  (match Exec.query db ~actor:"u" "INSERT INTO frag VALUES (21, 'ecoli', 999)" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.bool "INSERT invalidated cached results" true
    (counter "cache.result.invalidations" >= 1);
  check Alcotest.int "no stale count after INSERT" 21 (count_of db q);
  (match Exec.query db ~actor:"u" "DELETE FROM frag WHERE id = 21" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "no stale count after DELETE" 20 (count_of db q);
  check Alcotest.int "hits did not grow from stale entries" 1
    (counter "cache.result.hits")

let test_direct_table_write_validated () =
  (* a write that bypasses sqlx entirely (direct Table.update, the ETL
     loader's path) must still never yield a stale cached result: version
     validation catches it at lookup time *)
  isolated @@ fun () ->
  let db = fixture_db () in
  Obs.reset ();
  let q = "SELECT count(*) FROM frag WHERE len > 5000" in
  check Alcotest.int "cold: nothing matches" 0 (count_of db q);
  let _, table = Option.get (Db.resolve db ~actor:"u" "frag") in
  Table.insert_exn table [| D.Int 99; D.Str "ecoli"; D.Int 9000 |] |> ignore;
  check Alcotest.int "validated: the new row is visible" 1 (count_of db q);
  check Alcotest.bool "stale entry counted as invalidation" true
    (counter "cache.result.invalidations" >= 1)

let test_etl_refresh_invalidates () =
  isolated @@ fun () ->
  let r = Genalg_synth.Rng.make 91 in
  let entries = Genalg_synth.Recordgen.repository r ~size:10 ~prefix:"CCH" () in
  let src = Source.create ~name:"bank" Source.Logged Source.Flat_file entries in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src ] ()) in
  (match Pipeline.bootstrap pl with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let db = Pipeline.database pl in
  Obs.reset ();
  let q = "SELECT count(*) FROM sequences" in
  let before = count_of db q in
  check Alcotest.int "warm hit before refresh" before (count_of db q);
  check Alcotest.int "one result hit" 1 (counter "cache.result.hits");
  (* a new record lands in the source; the delta-refresh loads it *)
  let extra = List.hd (Genalg_synth.Recordgen.repository r ~size:1 ~prefix:"NEW" ()) in
  Source.apply src [ Source.Insert extra ];
  (match Pipeline.refresh pl with
  | Ok (_, n) -> check Alcotest.bool "refresh saw the delta" true (n >= 1)
  | Error m -> Alcotest.fail m);
  check Alcotest.int "no stale warehouse count after delta-refresh" (before + 1)
    (count_of db q);
  check Alcotest.bool "refresh invalidated the cached result" true
    (counter "cache.result.invalidations" >= 1)

(* ---- mediator: TTL response cache --------------------------------------- *)

let mediator_fixture ?cache_ttl_s () =
  let r = Genalg_synth.Rng.make 92 in
  let entries = Genalg_synth.Recordgen.repository r ~size:12 ~prefix:"MED" () in
  let src = Source.create ~name:"remote" Source.Logged Source.Flat_file entries in
  (entries, src, Mediator.create ?cache_ttl_s ~latency_s:0.05 [ src ])

let test_mediator_cache_hit () =
  isolated @@ fun () ->
  let entries, _src, m = mediator_fixture ~cache_ttl_s:300. () in
  Fun.protect ~finally:(fun () -> Mediator.detach m) @@ fun () ->
  let res1, t1 = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.int "cold run ships everything" (List.length entries)
    t1.Mediator.records_shipped;
  let res2, t2 = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.int "warm run ships nothing" 0 t2.Mediator.records_shipped;
  check (Alcotest.float 1e-9) "warm run pays no simulated network" 0.
    t2.Mediator.simulated_network_s;
  check Alcotest.bool "warm run flagged from_cache" true
    (List.for_all (fun s -> s.Mediator.from_cache) t2.Mediator.per_source);
  check Alcotest.int "same results either way" (List.length res1) (List.length res2);
  check Alcotest.int "hit counted" 1 (counter "cache.mediator.hits")

let test_mediator_ttl_expiry () =
  isolated @@ fun () ->
  let _entries, _src, m = mediator_fixture ~cache_ttl_s:0. () in
  Fun.protect ~finally:(fun () -> Mediator.detach m) @@ fun () ->
  ignore (Mediator.run ~reconcile:false m Mediator.query_all);
  let _, t2 = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.bool "expired entry does not serve" true
    (t2.Mediator.records_shipped > 0);
  check Alcotest.bool "expiry counted as invalidation" true
    (counter "cache.mediator.invalidations" >= 1)

let test_mediator_delta_invalidation () =
  isolated @@ fun () ->
  let entries, src, m = mediator_fixture ~cache_ttl_s:300. () in
  Fun.protect ~finally:(fun () -> Mediator.detach m) @@ fun () ->
  let mon = Result.get_ok (Monitor.create src) in
  ignore (Monitor.poll mon);
  (* warm the cache *)
  let res1, _ = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.int "baseline" (List.length entries) (List.length res1);
  (* the source changes; the monitor's poll publishes the deltas, which
     must kill the cached response *)
  let r = Genalg_synth.Rng.make 93 in
  let extra = List.hd (Genalg_synth.Recordgen.repository r ~size:1 ~prefix:"HOT" ()) in
  Source.apply src [ Source.Insert extra ];
  let deltas = Monitor.poll mon in
  check Alcotest.int "delta detected" 1 (List.length deltas);
  check Alcotest.bool "notification invalidated the response cache" true
    (counter "cache.mediator.invalidations" >= 1);
  let res2, t2 = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.int "no stale response after the delta" (List.length entries + 1)
    (List.length res2);
  check Alcotest.bool "the fresh run re-contacted the source" true
    (t2.Mediator.records_shipped > 0)

let test_uncached_mediator_unchanged () =
  isolated @@ fun () ->
  let entries, _src, m = mediator_fixture () in
  let _, t1 = Mediator.run ~reconcile:false m Mediator.query_all in
  let _, t2 = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.int "default mediator ships every time (Figure 1 baseline)"
    (List.length entries) t1.Mediator.records_shipped;
  check Alcotest.int "and again" (List.length entries) t2.Mediator.records_shipped;
  check Alcotest.int "no cache instruments touched" 0 (counter "cache.mediator.hits")

(* ---- storage: buffer pool ----------------------------------------------- *)

let test_buffer_pool_write_back () =
  (* a pool far smaller than the heap forces evictions of dirty pages;
     every record must survive the write-back round trip *)
  isolated @@ fun () ->
  let saved = Buffer_pool.default_capacity () in
  Buffer_pool.set_default_capacity 4;
  Fun.protect ~finally:(fun () -> Buffer_pool.set_default_capacity saved)
  @@ fun () ->
  let h = Heap.create () in
  let n = 2000 in
  let rids =
    List.init n (fun i -> (i, Heap.insert h (Bytes.of_string (Printf.sprintf "record-%04d" i))))
  in
  check Alcotest.bool "spilled well past the pool" true (Heap.page_count h > 4);
  check Alcotest.bool "evictions happened" true (counter "cache.bufferpool.evictions" > 0);
  List.iter
    (fun (i, rid) ->
      match Heap.get h rid with
      | Some b ->
          check Alcotest.string
            (Printf.sprintf "record %d intact" i)
            (Printf.sprintf "record-%04d" i)
            (Bytes.to_string b)
      | None -> Alcotest.failf "record %d lost" i)
    rids;
  (* serialization flushes dirty frames; a reload starts cold and still
     sees everything *)
  let h2 = Result.get_ok (Heap.of_bytes (Heap.to_bytes h)) in
  check Alcotest.int "reload keeps every record" n (Heap.record_count h2);
  let misses0 = counter "cache.bufferpool.misses" in
  check Alcotest.bool "reloaded heap reads fine" true
    (Heap.get h2 (snd (List.nth rids (n / 2))) <> None);
  check Alcotest.bool "cold reload decodes on miss" true
    (counter "cache.bufferpool.misses" > misses0)

let test_buffer_pool_warm_hits () =
  isolated @@ fun () ->
  let h = Heap.create () in
  let rid = Heap.insert h (Bytes.of_string "payload") in
  Heap.drop_page_cache h;
  Obs.reset ();
  ignore (Heap.get h rid);
  check Alcotest.int "first read after a cold drop misses" 1
    (counter "cache.bufferpool.misses");
  ignore (Heap.get h rid);
  ignore (Heap.get h rid);
  check Alcotest.int "subsequent reads hit" 2 (counter "cache.bufferpool.hits")

let suites =
  [
    ( "cache",
      [
        tc "plan cache reuses plans" `Quick test_plan_cache_reuses_plans;
        tc "ANALYZE invalidates cached plans" `Quick
          test_analyze_invalidates_plan_cache;
        tc "result + stmt caches hit" `Quick test_result_cache_hit_and_stmt_cache;
        tc "INSERT/DELETE invalidate results" `Quick test_insert_invalidates_result_cache;
        tc "direct table write never stale" `Quick test_direct_table_write_validated;
        tc "ETL delta-refresh invalidates" `Quick test_etl_refresh_invalidates;
        tc "mediator cache hit" `Quick test_mediator_cache_hit;
        tc "mediator TTL expiry" `Quick test_mediator_ttl_expiry;
        tc "mediator delta invalidation" `Quick test_mediator_delta_invalidation;
        tc "uncached mediator baseline unchanged" `Quick test_uncached_mediator_unchanged;
        tc "buffer pool write-back" `Quick test_buffer_pool_write_back;
        tc "buffer pool warm hits" `Quick test_buffer_pool_warm_hits;
      ] );
  ]
