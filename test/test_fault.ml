(* The deterministic fault-injection registry: spec parsing, the
   seeded fire schedule, payload mangling, crash points and tallies. *)

module Fault = Genalg_fault.Fault

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* every test leaves the process-wide registry clean *)
let with_spec spec f =
  (match Fault.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad spec %S: %s" spec msg);
  Fun.protect ~finally:(fun () -> Fault.disable ()) f

(* ---- spec parsing ------------------------------------------------------ *)

let test_parse_roundtrip () =
  with_spec "seed=7;source.s1:error:p=0.5;x.y:latency:s=0.4:p=0.3" (fun () ->
      checkb "active" true (Fault.active ());
      checki "seed" 7 (Fault.seed ());
      check Alcotest.string "normalized"
        "seed=7;source.s1:error:p=0.5;x.y:latency:p=0.3:s=0.4"
        (Fault.render_spec ());
      checki "rules" 2 (List.length (Fault.rules ())))

let test_parse_defaults () =
  with_spec "a.b:truncate" (fun () ->
      match Fault.rules () with
      | [ r ] ->
          check (Alcotest.float 1e-9) "p" 1.0 r.Fault.p;
          checki "after" 0 r.Fault.after;
          checkb "times" true (r.Fault.times = None);
          check (Alcotest.float 1e-9) "truncate frac default" 0.5
            r.Fault.fraction
      | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs))

let test_parse_rejects () =
  let bad spec =
    match Fault.configure spec with
    | Ok () -> Alcotest.failf "spec %S should be rejected" spec
    | Error _ -> ()
  in
  bad "a.b:explode";
  bad "a.b:error:p=1.5";
  bad ":error";
  bad "a.b:error:nonsense";
  bad "seed=x;a.b:error";
  Fault.disable ()

let test_empty_spec_deactivates () =
  with_spec "a.b:error" (fun () -> checkb "active" true (Fault.active ()));
  (match Fault.configure "" with Ok () -> () | Error m -> Alcotest.fail m);
  checkb "inactive" false (Fault.active ())

(* ---- hooks ------------------------------------------------------------- *)

let test_disabled_hooks_noop () =
  Fault.disable ();
  Fault.reset_tallies ();
  Fault.hit "any.site";
  Fault.crash "any.site";
  check (Alcotest.float 1e-9) "latency" 0. (Fault.latency_s "any.site");
  check Alcotest.string "mangle" "payload" (Fault.mangle "any.site" "payload");
  checki "nothing injected" 0 (Fault.total_injected ())

let test_error_hit () =
  with_spec "a.b:error:msg=boom" (fun () ->
      match Fault.hit "a.b" with
      | exception Fault.Injected (site, msg) ->
          check Alcotest.string "site" "a.b" site;
          check Alcotest.string "msg" "boom" msg
      | () -> Alcotest.fail "error rule did not fire")

let test_wildcard_site () =
  with_spec "source.*:error" (fun () ->
      (match Fault.hit "source.anything" with
      | exception Fault.Injected _ -> ()
      | () -> Alcotest.fail "wildcard should match source.anything");
      (* unrelated sites are untouched *)
      Fault.hit "storage.save.tmp")

let test_after_times_schedule () =
  with_spec "a.b:error:after=2:times=3" (fun () ->
      let fired =
        List.init 10 (fun _ ->
            match Fault.hit "a.b" with
            | exception Fault.Injected _ -> true
            | () -> false)
      in
      (* p=1: skips the first 2 hits, then fires exactly 3 times *)
      check
        (Alcotest.list Alcotest.bool)
        "schedule"
        [ false; false; true; true; true; false; false; false; false; false ]
        fired)

let test_deterministic_sequence () =
  let spec = "seed=42;a.b:error:p=0.4" in
  let sample () =
    with_spec spec (fun () ->
        List.init 100 (fun _ ->
            match Fault.hit "a.b" with
            | exception Fault.Injected _ -> true
            | () -> false))
  in
  let s1 = sample () and s2 = sample () in
  check (Alcotest.list Alcotest.bool) "same seed, same faults" s1 s2;
  checkb "some fired" true (List.mem true s1);
  checkb "some passed" true (List.mem false s1);
  (* a different seed draws a different sequence *)
  let s3 =
    with_spec "seed=43;a.b:error:p=0.4" (fun () ->
        List.init 100 (fun _ ->
            match Fault.hit "a.b" with
            | exception Fault.Injected _ -> true
            | () -> false))
  in
  checkb "different seed differs" true (s1 <> s3)

let test_latency () =
  with_spec "net.x:latency:s=0.75" (fun () ->
      check (Alcotest.float 1e-9) "seconds" 0.75 (Fault.latency_s "net.x");
      check (Alcotest.float 1e-9) "other site" 0. (Fault.latency_s "net.y"))

let test_truncate () =
  with_spec "w.x:truncate:frac=0.5" (fun () ->
      let payload = String.make 100 'A' in
      checki "half kept" 50 (String.length (Fault.mangle "w.x" payload)))

let test_corrupt () =
  with_spec "w.x:corrupt:frac=0.1" (fun () ->
      let payload = String.make 100 'A' in
      let mangled = Fault.mangle "w.x" payload in
      checki "length preserved" 100 (String.length mangled);
      checkb "bytes flipped" true (mangled <> payload))

let test_crash_hook () =
  with_spec "cp.x:crash" (fun () ->
      match Fault.crash "cp.x" with
      | exception Fault.Crash_point site ->
          check Alcotest.string "site" "cp.x" site
      | () -> Alcotest.fail "crash rule did not fire")

let test_crash_point_registry () =
  (* the storage save path registers its protocol points at link time *)
  let points = Fault.crash_points () in
  List.iter
    (fun site -> checkb site true (List.mem site points))
    Genalg_storage.Database.crash_points

(* ---- tallies ----------------------------------------------------------- *)

let test_tallies () =
  with_spec "a.b:error:times=2" (fun () ->
      for _ = 1 to 5 do
        try Fault.hit "a.b" with Fault.Injected _ -> ()
      done;
      match List.assoc_opt "a.b" (Fault.tallies ()) with
      | None -> Alcotest.fail "no tally for a.b"
      | Some t ->
          checki "checks" 5 t.Fault.checks;
          checki "injected" 2 t.Fault.injected;
          checki "errors" 2 t.Fault.errors;
          checki "total" 2 (Fault.total_injected ()))

let suites =
  [
    ( "fault:spec",
      [
        Alcotest.test_case "parse and render round-trip" `Quick
          test_parse_roundtrip;
        Alcotest.test_case "defaults" `Quick test_parse_defaults;
        Alcotest.test_case "bad specs rejected" `Quick test_parse_rejects;
        Alcotest.test_case "empty spec deactivates" `Quick
          test_empty_spec_deactivates;
      ] );
    ( "fault:hooks",
      [
        Alcotest.test_case "disabled hooks are no-ops" `Quick
          test_disabled_hooks_noop;
        Alcotest.test_case "error rule raises Injected" `Quick test_error_hit;
        Alcotest.test_case "wildcard sites" `Quick test_wildcard_site;
        Alcotest.test_case "after/times schedule" `Quick
          test_after_times_schedule;
        Alcotest.test_case "seeded sequence is deterministic" `Quick
          test_deterministic_sequence;
        Alcotest.test_case "latency rule" `Quick test_latency;
        Alcotest.test_case "truncate rule" `Quick test_truncate;
        Alcotest.test_case "corrupt rule" `Quick test_corrupt;
        Alcotest.test_case "crash rule raises Crash_point" `Quick
          test_crash_hook;
        Alcotest.test_case "storage crash points registered" `Quick
          test_crash_point_registry;
      ] );
    ( "fault:tallies",
      [ Alcotest.test_case "checks and fires counted" `Quick test_tallies ] );
  ]
