(* Sharded scatter-gather warehouse: partitioner properties, cluster ≡
   single-node equivalence over a query corpus, replica failover, the
   copy-on-write clone of genomic indexes, and protocol-v2 topology
   negotiation against live shard servers. *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Exec = Genalg_sqlx.Exec
module Ast = Genalg_sqlx.Ast
module Parser = Genalg_sqlx.Parser
module Cluster = Genalg_shard.Cluster
module Partitioner = Genalg_shard.Partitioner
module Fault = Genalg_fault.Fault
module Obs = Genalg_obs.Obs
module Par = Genalg_par.Par
module Server = Genalg_serve.Server
module Client = Genalg_serve.Client

let check = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected an error"

let attach db = Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default

let str_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let actor = "etl"

(* ---- fixture ----------------------------------------------------------- *)

let organisms = [| "human"; "mouse"; "yeast"; "ecoli" |]

let seed_sql =
  "CREATE TABLE seqs (organism string, accession string, len int, score float, seq string)"
  :: List.concat
       (List.init 32 (fun i ->
            let org = organisms.(i mod 4) in
            let len = if i mod 7 = 0 then "NULL" else string_of_int (40 + (i * 3 mod 60)) in
            let score =
              if i mod 11 = 3 then "NULL"
              else Printf.sprintf "%d.5" (i mod 9)
            in
            [
              Printf.sprintf
                "INSERT INTO seqs VALUES ('%s', 'ACC%04d', %s, %s, '%s')" org i
                len score
                (String.init 24 (fun j ->
                     "ACGT".[(i + j) mod 4]));
            ]))

let run_seed runner = List.iter (fun sql -> ignore (ok (runner sql))) seed_sql

let with_pair ?(shards = 3) f =
  let single = Db.create () in
  attach single;
  run_seed (Exec.query single ~actor);
  let cl = ok (Cluster.create_local ~attach ~shards ()) in
  run_seed (Cluster.query cl ~actor);
  Fun.protect ~finally:(fun () -> Fault.disable ()) (fun () -> f single cl)

let row_bytes rows =
  String.concat "|"
    (List.map (fun r -> Bytes.to_string (D.encode_row r)) rows)

(* byte-identical: same outcome constructor, same columns, same rows in
   the same order (or the same error message) *)
let assert_same single cl sql =
  let a = Exec.query single ~actor sql in
  let b = Cluster.query cl ~actor sql in
  match a, b with
  | Ok (Exec.Rows ra), Ok (Exec.Rows rb) ->
      check (sql ^ " [columns]")
        (String.concat "," ra.Exec.columns)
        (String.concat "," rb.Exec.columns);
      check (sql ^ " [rows]") (row_bytes ra.Exec.rows) (row_bytes rb.Exec.rows)
  | Ok (Exec.Affected na), Ok (Exec.Affected nb) -> checki sql na nb
  | Ok Exec.Executed, Ok Exec.Executed -> ()
  | Error ea, Error eb -> check (sql ^ " [error]") ea eb
  | _ -> Alcotest.failf "%s: outcomes diverge" sql

let corpus =
  [
    "SELECT * FROM seqs";
    "SELECT accession, len FROM seqs";
    "SELECT accession, len FROM seqs WHERE organism = 'human'";
    "SELECT accession FROM seqs WHERE 'mouse' = organism";
    "SELECT accession, len FROM seqs WHERE len > 50";
    "SELECT accession FROM seqs WHERE len > 50 AND organism = 'yeast'";
    "SELECT accession, score FROM seqs WHERE score <= 4.5 AND len >= 40";
    "SELECT upper(organism), strlen(seq) FROM seqs WHERE len <> 46";
    "SELECT accession FROM seqs ORDER BY accession DESC";
    "SELECT accession, len FROM seqs ORDER BY len DESC, accession ASC";
    "SELECT accession, len FROM seqs ORDER BY len ASC LIMIT 5";
    "SELECT * FROM seqs LIMIT 7";
    "SELECT accession FROM seqs WHERE organism = 'nope'";
    "SELECT count(*) FROM seqs";
    "SELECT count(len) FROM seqs";
    "SELECT sum(len), min(len), max(len), avg(len) FROM seqs";
    "SELECT sum(score), avg(score) FROM seqs WHERE organism = 'human'";
    "SELECT count(*) FROM seqs WHERE organism = 'nope'";
    "SELECT sum(len) FROM seqs WHERE organism = 'nope'";
    "SELECT organism, count(*) FROM seqs GROUP BY organism";
    "SELECT organism, sum(len), avg(score) FROM seqs GROUP BY organism";
    "SELECT organism, count(*) FROM seqs GROUP BY organism HAVING count(*) > 7";
    "SELECT organism, min(accession) FROM seqs GROUP BY organism ORDER BY count(*) DESC, organism ASC";
    "SELECT organism, sum(len) + 1 FROM seqs GROUP BY organism ORDER BY organism";
    "SELECT upper(organism), count(*) FROM seqs GROUP BY upper(organism) ORDER BY upper(organism)";
    "SELECT organism FROM seqs WHERE len > 90 GROUP BY organism";
    "SELECT count(*) + 1 FROM seqs WHERE organism = 'nope'";
    (* error cases: canonical single-node messages must survive *)
    "SELECT nosuch FROM seqs";
    "SELECT accession FROM nosuchtable";
    "SELECT sum(organism) FROM seqs";
    "SELECT organism FROM seqs GROUP BY organism HAVING sum(len)";
    (* joins fall back to the mirror *)
    "SELECT a.accession, b.accession FROM seqs a, seqs b WHERE a.len = b.len AND a.organism = 'yeast' ORDER BY a.accession, b.accession LIMIT 10";
  ]

let test_corpus () =
  with_pair (fun single cl -> List.iter (assert_same single cl) corpus)

let test_corpus_after_writes () =
  with_pair (fun single cl ->
      List.iter
        (fun sql ->
          ignore (Exec.query single ~actor sql);
          ignore (Cluster.query cl ~actor sql))
        [
          "DELETE FROM seqs WHERE len < 46";
          "INSERT INTO seqs VALUES ('human', 'ACC9001', 99, 1.5, 'ACGT')";
          "ANALYZE seqs";
        ];
      List.iter (assert_same single cl) corpus)

let test_corpus_with_index () =
  with_pair (fun single cl ->
      List.iter
        (fun sql ->
          ignore (ok (Exec.query single ~actor sql));
          ignore (ok (Cluster.query cl ~actor sql)))
        [ "CREATE INDEX ON seqs (len)"; "ANALYZE seqs" ];
      (* eq on the indexed column shards; range on it falls back *)
      List.iter (assert_same single cl)
        [
          "SELECT accession FROM seqs WHERE len = 58";
          "SELECT accession FROM seqs WHERE len > 58 ORDER BY accession";
          "SELECT count(*) FROM seqs WHERE len >= 58";
        ];
      let explained =
        match
          ok (Cluster.query cl ~actor "EXPLAIN SELECT accession FROM seqs WHERE len > 58")
        with
        | Exec.Rows rs ->
            String.concat "\n"
              (List.filter_map
                 (function [| D.Str s |] -> Some s | _ -> None)
                 rs.Exec.rows)
        | _ -> ""
      in
      checkb "range on indexed column is a gather-all" true
        (String.length explained >= 10
        && String.sub explained 0 10 = "Gather-all"))

let test_insert_partial () =
  with_pair (fun single cl ->
      let sql = "INSERT INTO seqs VALUES ('human','A',1,1.0,'x'), ('human','B'), ('human','C',3,3.0,'z')" in
      let ea = err (Exec.query single ~actor sql) in
      let eb = err (Cluster.query cl ~actor sql) in
      check "partial insert error" ea eb;
      (* the row before the failing one stays applied on both sides *)
      List.iter (assert_same single cl)
        [ "SELECT count(*) FROM seqs"; "SELECT * FROM seqs" ])

let test_reserved_column () =
  let cl = ok (Cluster.create_local ~attach ~shards:2 ()) in
  let e = err (Cluster.query cl ~actor "CREATE TABLE bad (x int, __grid int)") in
  checkb "reserved name mentioned" true (str_contains e "__grid")

let test_explain () =
  with_pair (fun _single cl ->
      let lines sql =
        match ok (Cluster.query cl ~actor sql) with
        | Exec.Rows rs ->
            String.concat "\n"
              (List.filter_map
                 (function [| D.Str s |] -> Some s | _ -> None)
                 rs.Exec.rows)
        | _ -> ""
      in
      let contains = str_contains in
      let plain = lines "EXPLAIN SELECT accession FROM seqs WHERE organism = 'human'" in
      checkb "scatter header" true (contains plain "Scatter-gather (shards=3");
      checkb "pruned to one target" true (contains plain "targets=1");
      checkb "partition column shown" true (contains plain "partition=organism");
      let grouped = lines "EXPLAIN SELECT organism, count(*) FROM seqs GROUP BY organism" in
      checkb "partial-aggregate gather" true
        (contains grouped "merge partial aggregates");
      let analyzed = lines "EXPLAIN ANALYZE SELECT organism, count(*) FROM seqs GROUP BY organism" in
      checkb "analyze shows gathered" true
        (contains analyzed "gathered=3");
      checkb "analyze shows failed-over" true
        (contains analyzed "failed-over=0");
      let join = lines "EXPLAIN SELECT a.len FROM seqs a, seqs b" in
      checkb "join is gather-all" true (contains join "Gather-all (fallback:"))

(* ---- failover ---------------------------------------------------------- *)

let test_failover_to_replica () =
  with_pair (fun single cl ->
      ok (Fault.configure "shard.1.primary:error");
      let before = Cluster.failovers_total cl in
      List.iter (assert_same single cl)
        [
          "SELECT accession, len FROM seqs ORDER BY accession";
          "SELECT organism, count(*) FROM seqs GROUP BY organism";
          "SELECT sum(len) FROM seqs";
        ];
      checkb "failovers counted" true (Cluster.failovers_total cl > before);
      Fault.disable ();
      List.iter (assert_same single cl) [ "SELECT count(*) FROM seqs" ])

let test_dead_shard_falls_back_to_mirror () =
  with_pair (fun single cl ->
      ok (Fault.configure "shard.1.primary:error;shard.1.replica:error");
      assert_same single cl "SELECT accession FROM seqs ORDER BY accession";
      let rep = Cluster.last_report cl in
      checkb "mirror answered" true (rep.Cluster.fallback <> None);
      Fault.disable ())

let test_crash_looping_shard () =
  with_pair (fun single cl ->
      (* a crash-looping primary: every hit dies; replica keeps serving *)
      ok (Fault.configure "shard.0.primary:crash");
      for _ = 1 to 10 do
        assert_same single cl "SELECT organism, count(*) FROM seqs GROUP BY organism"
      done;
      Fault.disable ())

let test_replica_consistency () =
  with_pair (fun _single cl ->
      ignore (ok (Cluster.query cl ~actor "DELETE FROM seqs WHERE len = 46"));
      ignore
        (ok
           (Cluster.query cl ~actor
              "INSERT INTO seqs VALUES ('yeast','ACC9100',77,2.5,'ACGTACGT')"));
      for i = 0 to Cluster.shard_count cl - 1 do
        match Cluster.primary_db cl i, Cluster.replica_db cl i with
        | Some p, Some r ->
            let dump db =
              match ok (Exec.query db ~actor "SELECT * FROM seqs") with
              | Exec.Rows rs -> row_bytes rs.Exec.rows
              | _ -> ""
            in
            check (Printf.sprintf "shard %d primary = replica" i) (dump p)
              (dump r)
        | _ -> Alcotest.fail "local cluster must expose shard stores"
      done)

let test_merged_stats () =
  with_pair (fun _single cl ->
      ignore (ok (Cluster.query cl ~actor "ANALYZE seqs"));
      let text = ok (Cluster.merged_stats_text cl ~actor ~table:"seqs") in
      checkb "mentions merged" true (str_contains text "merged statistics");
      checkb "row counts add up" true (str_contains text "32"))

let test_obs_counters () =
  with_pair (fun _single cl ->
      Obs.set_enabled true;
      let v name = Obs.value (Obs.counter name) in
      let q0 = v "shard.queries" in
      let p0 = v "shard.pruned" in
      ignore (ok (Cluster.query cl ~actor "SELECT count(*) FROM seqs WHERE organism = 'human'"));
      checkb "shard.queries ticks" true (v "shard.queries" > q0);
      checkb "shard.pruned ticks" true (v "shard.pruned" > p0);
      checkb "shard.* visible in stats table" true
        (str_contains (Obs.render_table ~prefix:"shard" ()) "shard.queries"))

(* ---- partitioner ------------------------------------------------------- *)

let test_partitioner_total_stable () =
  let values =
    [
      D.Null; D.Bool true; D.Bool false; D.Int 0; D.Int (-7); D.Int 123456;
      D.Float 0.; D.Float 3.25; D.Str ""; D.Str "human";
      D.Opaque ("dna", Bytes.of_string "ACGT");
    ]
  in
  List.iter
    (fun v ->
      List.iter
        (fun n ->
          let s = Partitioner.shard_of ~shards:n v in
          checkb "in range" true (s >= 0 && s < max 1 n);
          checki "stable" s (Partitioner.shard_of ~shards:n v))
        [ 1; 2; 3; 4; 8 ])
    values;
  (* equal-comparing numerics co-locate, so literal pruning agrees with
     stored rows regardless of lexical spelling *)
  checki "int/float co-hash"
    (Partitioner.shard_of ~shards:8 (D.Int 7))
    (Partitioner.shard_of ~shards:8 (D.Float 7.));
  (* domain-pool size must not leak into placement *)
  let jobs0 = Par.jobs () in
  let h1 = Partitioner.shard_of ~shards:8 (D.Str "stable") in
  Par.set_jobs 4;
  let h4 = Partitioner.shard_of ~shards:8 (D.Str "stable") in
  Par.set_jobs jobs0;
  checki "jobs-invariant" h1 h4

let test_partitioner_qcheck =
  QCheck.Test.make ~count:300 ~name:"partitioner total and stable"
    QCheck.(
      pair (oneofl [ 1; 2; 3; 5; 8; 16 ])
        (oneof
           [
             map (fun i -> D.Int i) int;
             map (fun f -> D.Float f) float;
             map (fun s -> D.Str s) string;
             map (fun b -> D.Bool b) bool;
             always D.Null;
           ]))
    (fun (n, v) ->
      let s = Partitioner.shard_of ~shards:n v in
      s >= 0 && s < n && s = Partitioner.shard_of ~shards:n v)

let test_partition_column () =
  let col ?(t = D.TString) name = { Ast.col_name = name; col_type = t; col_nullable = true } in
  check "prefers organism" "Organism"
    (Partitioner.partition_column [ col "acc"; col "Organism" ]);
  check "then accession" "accession"
    (Partitioner.partition_column [ col "len"; col "accession" ]);
  check "then id-like" "gene_id"
    (Partitioner.partition_column [ col "len"; col "gene_id" ]);
  check "else first column" "len"
    (Partitioner.partition_column [ col "len"; col "seq" ])

(* QCheck over a random WHERE/ORDER/aggregate grammar: the cluster and
   the single-node engine must agree byte for byte *)
let test_random_queries =
  QCheck.Test.make ~count:60 ~name:"random scatter queries match single node"
    QCheck.(
      quad (oneofl [ "human"; "mouse"; "yeast"; "nope" ])
        (oneofl [ 40; 46; 58; 70; 95 ])
        (oneofl
           [ ""; " ORDER BY accession DESC"; " ORDER BY len ASC, accession ASC" ])
        (oneofl [ ""; " LIMIT 3"; " LIMIT 11" ]))
    (fun (org, len, order, limit) ->
      let sqls =
        [
          Printf.sprintf
            "SELECT accession, len FROM seqs WHERE organism = '%s' AND len > %d%s%s"
            org len order limit;
          Printf.sprintf
            "SELECT organism, count(*), sum(len) FROM seqs WHERE len > %d GROUP BY organism%s"
            len
            (if order = "" then "" else " ORDER BY organism DESC");
        ]
      in
      with_pair (fun single cl ->
          List.iter (assert_same single cl) sqls;
          true))

(* ---- copy-on-write genomic index clone (Database.clone) ---------------- *)

let cow_fixture () =
  let db = Db.create () in
  attach db;
  List.iter
    (fun sql -> ignore (ok (Exec.query db ~actor sql)))
    [
      "CREATE TABLE genes (name string, seq dna)";
      "INSERT INTO genes VALUES ('a', dna('ACGTACGTTT'))";
      "INSERT INTO genes VALUES ('b', dna('TTTTACGTAC'))";
      "CREATE GENOMIC INDEX ON genes (seq)";
    ];
  db

let contains_names db =
  match
    ok
      (Exec.query db ~actor
         "SELECT name FROM genes WHERE contains(seq, 'ACGTAC') ORDER BY name")
  with
  | Exec.Rows rs ->
      String.concat ","
        (List.filter_map
           (function [| D.Str s |] -> Some s | _ -> None)
           rs.Exec.rows)
  | _ -> ""

let test_cow_clone_shares () =
  let db = cow_fixture () in
  Obs.set_enabled true;
  let clones0 = Obs.value (Obs.counter "storage.text_index.cow_clones") in
  let clone = Db.clone db in
  attach clone;
  checkb "clone shared the index" true
    (Obs.value (Obs.counter "storage.text_index.cow_clones") > clones0);
  check "clone answers from the shared index" "a,b" (contains_names clone);
  check "original still answers" "a,b" (contains_names db)

let test_cow_divergence_isolated () =
  let db = cow_fixture () in
  let clone = Db.clone db in
  attach clone;
  (* write through the original: the first index mutation breaks COW *)
  let breaks0 = Obs.value (Obs.counter "storage.text_index.cow_breaks") in
  ignore
    (ok (Exec.query db ~actor "INSERT INTO genes VALUES ('c', dna('ACGTACAA'))"));
  checkb "cow break counted" true
    (Obs.value (Obs.counter "storage.text_index.cow_breaks") > breaks0);
  check "original sees the new row" "a,b,c" (contains_names db);
  check "clone is isolated" "a,b" (contains_names clone);
  (* and the other direction *)
  ignore
    (ok
       (Exec.query clone ~actor
          "INSERT INTO genes VALUES ('d', dna('ACGTACGG'))"));
  check "clone sees its own write" "a,b,d" (contains_names clone);
  check "original unaffected by clone write" "a,b,c" (contains_names db)

(* ---- protocol v2 negotiation & remote shards --------------------------- *)

let with_servers n ~topology f =
  let dir = Filename.temp_file "genalg_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () ->
      let servers =
        List.init n (fun i ->
            let db_path = Filename.concat dir (Printf.sprintf "s%d.db" i) in
            let socket = Filename.concat dir (Printf.sprintf "s%d.sock" i) in
            let db = Db.create () in
            ok (Db.save db db_path);
            let config =
              {
                (Server.default_config ~socket_path:socket) with
                Server.metrics = false;
                attach;
                topology = topology i;
              }
            in
            let server = ok (Server.create config ~db_path) in
            let dom = Domain.spawn (fun () -> Server.serve server) in
            (socket, server, dom))
      in
      let rec wait_ready socket n =
        if n = 0 then Alcotest.fail "shard server did not come up"
        else
          match Client.connect ~actor:"probe" ~socket () with
          | Ok c -> Client.close c
          | Error _ ->
              Unix.sleepf 0.02;
              wait_ready socket (n - 1)
      in
      List.iter (fun (s, _, _) -> wait_ready s 200) servers;
      let r = f (List.map (fun (s, _, _) -> s) servers) in
      List.iter
        (fun (_, server, dom) ->
          Server.stop server;
          match Domain.join dom with Ok () -> () | Error _ -> ())
        servers;
      r)

let test_version_negotiation () =
  with_servers 1
    ~topology:(fun _ -> "shard 0/1")
    (fun sockets ->
      let socket = List.hd sockets in
      (* a v1 client connects and sees the v1 wire shape (no topology) *)
      let c1 = ok (Client.connect ~actor:"etl" ~client_version:1 ~socket ()) in
      check "v1 client gets no topology" "" (Client.topology c1);
      Client.close c1;
      (* a v2 client learns where it landed *)
      let c2 = ok (Client.connect ~actor:"etl" ~socket ()) in
      check "v2 client sees the shard topology" "shard 0/1" (Client.topology c2);
      Client.close c2;
      (* a from-the-future client gets a typed refusal, not a hangup *)
      let e = err (Client.connect ~actor:"etl" ~client_version:99 ~socket ()) in
      checkb "VERSION error code surfaced" true
        (String.length e >= 7 && String.sub e 0 7 = "VERSION"))

let test_remote_cluster () =
  with_servers 2
    ~topology:(fun i -> Printf.sprintf "shard %d/2" i)
    (fun sockets ->
      let cl = ok (Cluster.create_remote ~attach ~actor ~sockets ()) in
      Fun.protect
        ~finally:(fun () -> Cluster.close cl)
        (fun () ->
          run_seed (Cluster.query cl ~actor);
          let single = Db.create () in
          attach single;
          run_seed (Exec.query single ~actor);
          List.iter (assert_same single cl)
            [
              "SELECT accession, len FROM seqs WHERE organism = 'human' ORDER BY accession";
              "SELECT organism, count(*), sum(len) FROM seqs GROUP BY organism ORDER BY organism";
              "SELECT count(*) FROM seqs";
            ];
          (* remote shards really hold disjoint partitions *)
          let remote_counts =
            List.map
              (fun socket ->
                let c = ok (Client.connect ~actor ~socket ()) in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    match ok (Client.query c "SELECT count(*) FROM seqs") with
                    | Genalg_serve.Protocol.Rows { rows = [ [| D.Int n |] ]; _ } -> n
                    | _ -> -1))
              sockets
          in
          checki "partitions cover all rows" 32
            (List.fold_left ( + ) 0 remote_counts);
          checkb "data is actually split" true
            (List.for_all (fun n -> n > 0 && n < 32) remote_counts)))

let suites =
  [
    ( "shard.partitioner",
      [
        Alcotest.test_case "total, stable, co-hashing" `Quick
          test_partitioner_total_stable;
        Alcotest.test_case "partition column heuristic" `Quick
          test_partition_column;
        QCheck_alcotest.to_alcotest test_partitioner_qcheck;
      ] );
    ( "shard.scatter",
      [
        Alcotest.test_case "corpus matches single node" `Quick test_corpus;
        Alcotest.test_case "corpus after writes and ANALYZE" `Quick
          test_corpus_after_writes;
        Alcotest.test_case "corpus with B-tree index" `Quick
          test_corpus_with_index;
        Alcotest.test_case "partial INSERT application" `Quick
          test_insert_partial;
        Alcotest.test_case "__grid is reserved" `Quick test_reserved_column;
        Alcotest.test_case "EXPLAIN and EXPLAIN ANALYZE" `Quick test_explain;
        QCheck_alcotest.to_alcotest test_random_queries;
      ] );
    ( "shard.failover",
      [
        Alcotest.test_case "primary dies, replica serves" `Quick
          test_failover_to_replica;
        Alcotest.test_case "dead shard degrades to mirror" `Quick
          test_dead_shard_falls_back_to_mirror;
        Alcotest.test_case "crash-looping primary" `Quick
          test_crash_looping_shard;
        Alcotest.test_case "replicas stay consistent" `Quick
          test_replica_consistency;
      ] );
    ( "shard.stats",
      [
        Alcotest.test_case "merged ANALYZE statistics" `Quick test_merged_stats;
        Alcotest.test_case "shard.* instruments" `Quick test_obs_counters;
      ] );
    ( "shard.cow-clone",
      [
        Alcotest.test_case "clone shares genomic indexes" `Quick
          test_cow_clone_shares;
        Alcotest.test_case "divergence is isolated" `Quick
          test_cow_divergence_isolated;
      ] );
    ( "shard.remote",
      [
        Alcotest.test_case "protocol version negotiation" `Quick
          test_version_negotiation;
        Alcotest.test_case "two-shard remote cluster" `Quick
          test_remote_cluster;
      ] );
  ]
