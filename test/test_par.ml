(* Tests for the domain pool (lib/par) and for the determinism of every
   parallel consumer: partitioned scans, hash joins, batch alignment and
   index construction must produce bit-identical results for any jobs
   setting. *)

module Par = Genalg_par.Par
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec

let check = Alcotest.check
let tc = Alcotest.test_case

(* run [f] at a given jobs setting and restore the previous one after *)
let with_jobs n f =
  let prev = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs prev) f

(* ---- combinators -------------------------------------------------------- *)

let test_map_order_preserved () =
  let input = Array.init 1_000 (fun i -> i) in
  let expected = Array.map (fun i -> (i * 31) mod 257) input in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let got = Par.parallel_map (fun i -> (i * 31) mod 257) input in
          check Alcotest.bool
            (Printf.sprintf "map order at jobs=%d" jobs)
            true (got = expected)))
    [ 1; 2; 3; 8 ]

let test_map_list_and_empty () =
  with_jobs 4 (fun () ->
      check
        Alcotest.(list int)
        "list version" [ 2; 4; 6 ]
        (Par.parallel_map_list (fun x -> 2 * x) [ 1; 2; 3 ]);
      check Alcotest.(list int) "empty list" [] (Par.parallel_map_list Fun.id []);
      check Alcotest.bool "empty array" true (Par.parallel_map Fun.id [||] = [||]);
      check Alcotest.bool "singleton" true (Par.parallel_map succ [| 41 |] = [| 42 |]))

let test_tiny_chunk () =
  (* chunk=1 maximizes hand-offs between domains; order must survive *)
  with_jobs 4 (fun () ->
      let input = Array.init 100 string_of_int in
      let got = Par.parallel_map ~chunk:1 (fun s -> s ^ "!") input in
      check Alcotest.bool "chunk=1 order" true
        (got = Array.map (fun s -> s ^ "!") input))

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let raised =
            try
              ignore
                (Par.parallel_map
                   (fun i -> if i = 37 then raise (Boom i) else i)
                   (Array.init 500 Fun.id));
              None
            with Boom i -> Some i
          in
          check
            Alcotest.(option int)
            (Printf.sprintf "Boom propagates at jobs=%d" jobs)
            (Some 37) raised;
          (* the pool must stay usable after a failed operation *)
          check Alcotest.bool "pool alive after exception" true
            (Par.parallel_map succ [| 1; 2; 3 |] = [| 2; 3; 4 |])))
    [ 1; 4 ]

let test_fold_and_for () =
  with_jobs 3 (fun () ->
      let n = 10_000 in
      let input = Array.init n (fun i -> i + 1) in
      let sum =
        Par.parallel_fold ~map:Fun.id ~combine:( + ) ~init:0 input
      in
      check Alcotest.int "fold sum" (n * (n + 1) / 2) sum;
      (* combine runs in chunk order: string concat is associative but not
         commutative, so this catches out-of-order merges *)
      let cat =
        Par.parallel_fold ~map:string_of_int ~combine:( ^ ) ~init:""
          (Array.init 50 Fun.id)
      in
      check Alcotest.string "fold is ordered" (String.concat "" (List.init 50 string_of_int)) cat;
      let out = Array.make 256 (-1) in
      Par.parallel_for 256 (fun i -> out.(i) <- i * i);
      check Alcotest.bool "for writes every slot" true
        (out = Array.init 256 (fun i -> i * i)))

let test_parallel_sort () =
  let rng = Genalg_synth.Rng.make 42 in
  List.iter
    (fun (jobs, n) ->
      with_jobs jobs (fun () ->
          let a = Array.init n (fun _ -> Genalg_synth.Rng.int rng 1000) in
          let expected = Array.copy a in
          Array.sort Int.compare expected;
          (* force a sub-chunk-size merge path with an explicit chunk *)
          Par.parallel_sort ~chunk:(max 1 (n / 7)) Int.compare a;
          check Alcotest.bool
            (Printf.sprintf "sort jobs=%d n=%d" jobs n)
            true (a = expected)))
    [ (1, 100); (4, 100); (4, 5_000); (3, 4_097) ]

let test_nested_calls_inline () =
  (* a parallel op inside a worker must run inline, not deadlock *)
  with_jobs 4 (fun () ->
      let got =
        Par.parallel_map
          (fun i ->
            Array.fold_left ( + ) 0
              (Par.parallel_map (fun j -> i * j) (Array.init 20 Fun.id)))
          (Array.init 40 Fun.id)
      in
      let expected = Array.init 40 (fun i -> i * 190) in
      check Alcotest.bool "nested map" true (got = expected))

(* ---- pool lifecycle ------------------------------------------------------ *)

let test_jobs_clamped_and_default () =
  with_jobs 1 (fun () ->
      Par.set_jobs 0;
      check Alcotest.int "jobs clamped to 1" 1 (Par.jobs ());
      Par.set_jobs (-3);
      check Alcotest.int "negative clamped" 1 (Par.jobs ()));
  check Alcotest.bool "default_jobs positive" true (Par.default_jobs () >= 1)

let test_jobs1_spawns_nothing () =
  Par.shutdown ();
  check Alcotest.int "pool empty after shutdown" 0 (Par.pool_size ());
  with_jobs 1 (fun () ->
      let before = Par.spawned_total () in
      ignore (Par.parallel_map succ (Array.init 1_000 Fun.id));
      check Alcotest.int "jobs=1 runs inline" before (Par.spawned_total ());
      check Alcotest.int "no workers" 0 (Par.pool_size ()))

let test_pool_reused () =
  Par.shutdown ();
  with_jobs 3 (fun () ->
      let before = Par.spawned_total () in
      for _ = 1 to 10 do
        ignore (Par.parallel_map succ (Array.init 2_000 Fun.id))
      done;
      let spawned = Par.spawned_total () - before in
      check Alcotest.int "workers spawned once" 2 spawned;
      check Alcotest.int "pool holds jobs-1 workers" 2 (Par.pool_size ()));
  Par.shutdown ()

(* ---- parallel consumers are deterministic -------------------------------- *)

let sql_fixture () =
  let db = Db.create () in
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error msg -> Alcotest.failf "fixture: %s (%s)" msg sql
  in
  ignore (run "CREATE TABLE genes (gid int, organism string)");
  ignore (run "CREATE TABLE prots (pid int, gene int, plen int)");
  let _, genes = Option.get (Db.resolve db ~actor:Db.loader_actor "genes") in
  let _, prots = Option.get (Db.resolve db ~actor:Db.loader_actor "prots") in
  for i = 1 to 600 do
    ignore
      (Genalg_storage.Table.insert_exn genes
         [| D.Int i; D.Str (if i mod 3 = 0 then "ecoli" else "yeast") |]);
    ignore
      (Genalg_storage.Table.insert_exn prots
         [| D.Int (10_000 + i); D.Int (((i * 11) mod 600) + 1); D.Int (i mod 97) |])
  done;
  db

let rows_of db sql =
  Exec.clear_statement_caches ();
  match Exec.query db ~actor:"tester" sql with
  | Ok (Exec.Rows rs) -> rs.Exec.rows
  | Ok _ -> Alcotest.failf "expected rows from %s" sql
  | Error msg -> Alcotest.failf "%s (%s)" msg sql

let test_sql_jobs_identical () =
  let db = sql_fixture () in
  List.iter
    (fun sql ->
      let sequential = with_jobs 1 (fun () -> rows_of db sql) in
      List.iter
        (fun jobs ->
          let parallel = with_jobs jobs (fun () -> rows_of db sql) in
          check Alcotest.bool
            (Printf.sprintf "jobs=%d identical for %s" jobs sql)
            true
            (sequential = parallel))
        [ 2; 5 ])
    [
      "SELECT gid FROM genes WHERE gid * 7 > 140 AND organism = 'ecoli'";
      "SELECT g.gid, p.pid FROM genes g, prots p \
       WHERE g.gid = p.gene AND p.plen >= 48";
      "SELECT organism, count(*) AS n FROM genes GROUP BY organism ORDER BY organism DESC";
    ]

let test_batch_align_jobs_identical () =
  let rng = Genalg_synth.Rng.make 7 in
  let pairs =
    Array.init 24 (fun _ ->
        ( Genalg_synth.Seqgen.dna_string rng 120,
          Genalg_synth.Seqgen.dna_string rng 120 ))
  in
  let seq_scores = with_jobs 1 (fun () -> Genalg_align.Batch.score_pairs pairs) in
  let par_scores = with_jobs 4 (fun () -> Genalg_align.Batch.score_pairs pairs) in
  check Alcotest.bool "batch scores identical" true (seq_scores = par_scores);
  let expected =
    Array.map
      (fun (q, s) -> Genalg_align.Pairwise.score_only ~query:q ~subject:s ())
      pairs
  in
  check Alcotest.bool "batch matches pairwise loop" true (par_scores = expected);
  let named = Array.mapi (fun i (_, s) -> (Printf.sprintf "s%d" i, s)) pairs in
  let q = fst pairs.(0) in
  let best1 = with_jobs 1 (fun () -> Genalg_align.Batch.best_match ~query:q named) in
  let best4 = with_jobs 4 (fun () -> Genalg_align.Batch.best_match ~query:q named) in
  check Alcotest.bool "best_match identical" true (best1 = best4);
  check Alcotest.bool "best_match empty" true
    (Genalg_align.Batch.best_match ~query:q [||] = None)

let test_kmer_index_jobs_identical () =
  let rng = Genalg_synth.Rng.make 11 in
  (* long enough to clear the index's parallel threshold *)
  let text = Genalg_synth.Seqgen.dna_string rng 40_000 in
  let probe = String.sub text 20_000 15 in
  let seq_idx = with_jobs 1 (fun () -> Genalg_seqindex.Kmer_index.build ~k:12 text) in
  let par_idx = with_jobs 4 (fun () -> Genalg_seqindex.Kmer_index.build ~k:12 text) in
  check Alcotest.int "same distinct kmers"
    (Genalg_seqindex.Kmer_index.distinct_kmers seq_idx)
    (Genalg_seqindex.Kmer_index.distinct_kmers par_idx);
  check
    Alcotest.(list int)
    "same hits"
    (Genalg_seqindex.Kmer_index.find_all seq_idx probe)
    (Genalg_seqindex.Kmer_index.find_all par_idx probe);
  check Alcotest.bool "hits nonempty" true
    (Genalg_seqindex.Kmer_index.find_all par_idx probe <> [])

let test_suffix_array_jobs_identical () =
  let rng = Genalg_synth.Rng.make 13 in
  let text = Genalg_synth.Seqgen.dna_string rng 6_000 in
  let seq_sa = with_jobs 1 (fun () -> Genalg_seqindex.Suffix_array.build text) in
  let par_sa = with_jobs 4 (fun () -> Genalg_seqindex.Suffix_array.build text) in
  check Alcotest.bool "identical suffix arrays" true
    (Genalg_seqindex.Suffix_array.suffixes seq_sa
    = Genalg_seqindex.Suffix_array.suffixes par_sa);
  let probe = String.sub text 3_000 14 in
  check
    Alcotest.(list int)
    "same matches"
    (Genalg_seqindex.Suffix_array.find_all seq_sa probe)
    (Genalg_seqindex.Suffix_array.find_all par_sa probe)

let suites =
  [
    ( "par:pool",
      [
        tc "map preserves order" `Quick test_map_order_preserved;
        tc "list + degenerate inputs" `Quick test_map_list_and_empty;
        tc "chunk=1" `Quick test_tiny_chunk;
        tc "exception propagation" `Quick test_exception_propagation;
        tc "fold and for" `Quick test_fold_and_for;
        tc "parallel sort" `Quick test_parallel_sort;
        tc "nested calls run inline" `Quick test_nested_calls_inline;
        tc "jobs clamped" `Quick test_jobs_clamped_and_default;
        tc "jobs=1 spawns nothing" `Quick test_jobs1_spawns_nothing;
        tc "pool reused across ops" `Quick test_pool_reused;
      ] );
    ( "par:determinism",
      [
        tc "sql results identical across jobs" `Quick test_sql_jobs_identical;
        tc "batch alignment identical" `Quick test_batch_align_jobs_identical;
        tc "kmer index identical" `Quick test_kmer_index_jobs_identical;
        tc "suffix array identical" `Quick test_suffix_array_jobs_identical;
      ] );
  ]
