(* Tests for the genomic (substring) index integration — the section 6.5
   "user-defined index structures" mechanism: Text_index postings,
   Table-level maintenance, planner access selection, and SQL execution
   equivalence. *)

open Genalg_gdt
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Schema = Genalg_storage.Schema
module Udt = Genalg_storage.Udt
module Text_index = Genalg_storage.Text_index
module Exec = Genalg_sqlx.Exec
module Plan = Genalg_sqlx.Plan

let check = Alcotest.check
let tc = Alcotest.test_case

let dna_payload s = Sequence.to_bytes (Sequence.dna s)

let dna_support () =
  let registry = Udt.create () in
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  ignore registry;
  (Option.get (Udt.find_type (Db.udts db) "dna")).Udt.search |> Option.get

let rid i = { Genalg_storage.Heap.page = i; slot = 0 }

(* ---- Text_index directly -------------------------------------------- *)

let test_text_index_basics () =
  let idx = Text_index.create ~k:4 (dna_support ()) in
  Text_index.add idx (rid 1) (dna_payload "AAACGTACGTAAA");
  Text_index.add idx (rid 2) (dna_payload "GGGGGGGGGGGG");
  Text_index.add idx (rid 3) (dna_payload "TTACGTTT");
  let payloads =
    [ (rid 1, dna_payload "AAACGTACGTAAA"); (rid 2, dna_payload "GGGGGGGGGGGG");
      (rid 3, dna_payload "TTACGTTT") ]
  in
  let payload_of r = List.assoc_opt r payloads in
  (match Text_index.search idx ~pattern:"ACGT" ~payload_of with
  | Some hits ->
      check (Alcotest.list Alcotest.int) "rows 1 and 3"
        [ 1; 3 ]
        (List.sort Int.compare (List.map (fun r -> r.Genalg_storage.Heap.page) hits))
  | None -> Alcotest.fail "index should serve a 4-letter pattern");
  (match Text_index.search idx ~pattern:"GGGG" ~payload_of with
  | Some [ r ] -> check Alcotest.int "row 2" 2 r.Genalg_storage.Heap.page
  | _ -> Alcotest.fail "GGGG should hit row 2");
  (* shorter than k: cannot serve *)
  check Alcotest.bool "short pattern unsupported" true
    (Text_index.search idx ~pattern:"AC" ~payload_of = None)

let test_text_index_remove () =
  let idx = Text_index.create ~k:4 (dna_support ()) in
  let p = dna_payload "ACGTACGT" in
  Text_index.add idx (rid 1) p;
  Text_index.remove idx (rid 1) p;
  match Text_index.search idx ~pattern:"ACGT" ~payload_of:(fun _ -> Some p) with
  | Some [] -> ()
  | _ -> Alcotest.fail "removed record still matches"

let test_text_index_ambiguous_rows () =
  (* a row with an N is an always-candidate: IUPAC matching stays exact *)
  let idx = Text_index.create ~k:4 (dna_support ()) in
  let amb = dna_payload "NNNNNNNN" in
  Text_index.add idx (rid 9) amb;
  let payload_of r = if r = rid 9 then Some amb else None in
  match Text_index.search idx ~pattern:"ACGT" ~payload_of with
  | Some [ r ] ->
      (* N matches any base, so the all-N row genuinely contains ACGT *)
      check Alcotest.int "ambiguous row matched" 9 r.Genalg_storage.Heap.page
  | other ->
      Alcotest.failf "expected the ambiguous row to match, got %s"
        (match other with None -> "None" | Some l -> string_of_int (List.length l))

(* ---- Table-level ------------------------------------------------------- *)

let table_fixture () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let schema =
    Schema.make_exn
      [
        { Schema.name = "id"; dtype = D.TInt; nullable = false };
        { Schema.name = "seq"; dtype = D.TOpaque "dna"; nullable = false };
      ]
  in
  let table =
    Result.get_ok
      (Db.create_table db ~actor:Db.loader_actor ~space:Db.Public ~name:"t" schema)
  in
  (db, table)

let test_table_genomic_index () =
  let db, table = table_fixture () in
  let insert i s =
    Table.insert_exn table [| D.Int i; D.Opaque ("dna", dna_payload s) |]
  in
  ignore (insert 1 "AAAACGTACGTAAAA");
  ignore (insert 2 "GGGGGGGGGGGG");
  let r3 = insert 3 "CCATTGCCATACC" in
  check Alcotest.bool "create" true
    (Result.is_ok (Table.create_genomic_index table ~column:"seq" ~registry:(Db.udts db)));
  check Alcotest.bool "duplicate rejected" true
    (Result.is_error (Table.create_genomic_index table ~column:"seq" ~registry:(Db.udts db)));
  check Alcotest.bool "non-opaque rejected" true
    (Result.is_error (Table.create_genomic_index table ~column:"id" ~registry:(Db.udts db)));
  (match Table.genomic_search table ~column:"seq" ~pattern:"ATTGCCATA" with
  | `Hits [ r ] -> check Alcotest.bool "row 3" true (r = r3)
  | _ -> Alcotest.fail "backfilled search failed");
  (* maintenance: inserted rows become searchable, deleted rows vanish *)
  let r4 = insert 4 "TTATTGCCATATT" in
  (match Table.genomic_search table ~column:"seq" ~pattern:"ATTGCCATA" with
  | `Hits hits -> check Alcotest.int "two rows after insert" 2 (List.length hits)
  | _ -> Alcotest.fail "post-insert search failed");
  ignore (Table.delete table r4);
  ignore (Table.delete table r3);
  (match Table.genomic_search table ~column:"seq" ~pattern:"ATTGCCATA" with
  | `Hits [] -> ()
  | _ -> Alcotest.fail "deleted rows still matching");
  (* unsupported pattern: shorter than k *)
  match Table.genomic_search table ~column:"seq" ~pattern:"ACGT" with
  | `Unsupported_pattern -> ()
  | _ -> Alcotest.fail "short pattern should be unsupported"

(* ---- SQL level ----------------------------------------------------------- *)

let sql_fixture () =
  let rng = Genalg_synth.Rng.make 4242 in
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error m -> Alcotest.failf "fixture %s: %s" sql m
  in
  ignore (run "CREATE TABLE frags (id int, seq dna)");
  for i = 1 to 300 do
    let s = Genalg_synth.Seqgen.dna_string rng 200 in
    let s = if i mod 10 = 0 then "ATTGCCATAGG" ^ s else s in
    ignore (run (Printf.sprintf "INSERT INTO frags VALUES (%d, dna('%s'))" i s))
  done;
  (db, run)

let sorted_ids rs =
  List.filter_map
    (fun r -> match r.(0) with D.Int i -> Some i | _ -> None)
    rs.Exec.rows
  |> List.sort Int.compare

let test_sql_genomic_index_equivalence () =
  let db, run = sql_fixture () in
  let q = "SELECT id FROM frags WHERE contains(seq, 'ATTGCCATAGG')" in
  let before =
    match Exec.query db ~actor:"u" q with
    | Ok (Exec.Rows rs) -> sorted_ids rs
    | _ -> Alcotest.fail "scan query failed"
  in
  check Alcotest.int "30 planted rows" 30 (List.length before);
  ignore (run "CREATE GENOMIC INDEX ON frags (seq)");
  let after =
    match Exec.query db ~actor:"u" q with
    | Ok (Exec.Rows rs) -> sorted_ids rs
    | _ -> Alcotest.fail "indexed query failed"
  in
  check (Alcotest.list Alcotest.int) "identical results" before after;
  (* short pattern falls back to scanning, still correct *)
  let short = "SELECT count(*) FROM frags WHERE contains(seq, 'ACG')" in
  match Exec.query db ~actor:"u" short with
  | Ok (Exec.Rows { rows = [ [| D.Int n |] ]; _ }) ->
      check Alcotest.bool "fallback counts most rows" true (n > 250)
  | _ -> Alcotest.fail "fallback query failed"

let test_sql_planner_picks_genomic_access () =
  let db, run = sql_fixture () in
  ignore (run "CREATE GENOMIC INDEX ON frags (seq)");
  let catalog =
    {
      Plan.has_index = (fun ~table:_ ~column:_ -> false);
      has_genomic_index =
        (fun ~table ~column ->
          match Db.resolve db ~actor:"u" table with
          | Some (_, t) -> Table.has_genomic_index t ~column
          | None -> false);
      column_exists = (fun ~table:_ ~column:_ -> true);
      equality_selectivity = (fun ~table:_ ~column:_ -> None);
      column_dtype = (fun ~table:_ ~column:_ -> None);
    }
  in
  let select =
    match Genalg_sqlx.Parser.parse "SELECT id FROM frags WHERE contains(seq, 'ATTGCCATAGG')" with
    | Ok (Genalg_sqlx.Ast.Select s) -> s
    | _ -> Alcotest.fail "parse"
  in
  let plan = Plan.make catalog select in
  match (List.hd plan.Plan.tables).Plan.access with
  | Plan.Genomic_contains { column; pattern } ->
      check Alcotest.string "column" "seq" column;
      check Alcotest.string "pattern" "ATTGCCATAGG" pattern;
      check Alcotest.int "conjunct consumed" 0
        (List.length (List.hd plan.Plan.tables).Plan.filters)
  | _ -> Alcotest.fail "expected genomic access path"

let test_sql_genomic_index_statement_roundtrip () =
  match Genalg_sqlx.Parser.parse "CREATE GENOMIC INDEX ON t (seq)" with
  | Ok stmt ->
      check Alcotest.string "printer" "CREATE GENOMIC INDEX ON t (seq)"
        (Genalg_sqlx.Ast.stmt_to_string stmt)
  | Error m -> Alcotest.fail m

let test_sql_genomic_index_maintenance () =
  let db, run = sql_fixture () in
  ignore (run "CREATE GENOMIC INDEX ON frags (seq)");
  ignore (run "INSERT INTO frags VALUES (9999, dna('TTTTATTGCCATAGGTTTT'))");
  (match Exec.query db ~actor:"u"
           "SELECT count(*) FROM frags WHERE contains(seq, 'ATTGCCATAGG')" with
  | Ok (Exec.Rows { rows = [ [| D.Int n |] ]; _ }) ->
      check Alcotest.int "31 after insert" 31 n
  | _ -> Alcotest.fail "count failed");
  ignore (run "DELETE FROM frags WHERE id = 9999");
  match Exec.query db ~actor:"u"
          "SELECT count(*) FROM frags WHERE contains(seq, 'ATTGCCATAGG')" with
  | Ok (Exec.Rows { rows = [ [| D.Int n |] ]; _ }) ->
      check Alcotest.int "30 after delete" 30 n
  | _ -> Alcotest.fail "count failed"

let suites =
  [
    ( "genomic_index.text_index",
      [
        tc "basics" `Quick test_text_index_basics;
        tc "remove" `Quick test_text_index_remove;
        tc "ambiguous rows" `Quick test_text_index_ambiguous_rows;
      ] );
    ( "genomic_index.table",
      [ tc "create/search/maintain" `Quick test_table_genomic_index ] );
    ( "genomic_index.sql",
      [
        tc "scan/index equivalence" `Quick test_sql_genomic_index_equivalence;
        tc "planner access" `Quick test_sql_planner_picks_genomic_access;
        tc "statement roundtrip" `Quick test_sql_genomic_index_statement_roundtrip;
        tc "maintenance" `Quick test_sql_genomic_index_maintenance;
      ] );
  ]
