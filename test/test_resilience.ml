(* Retry/backoff policies and the circuit breaker: deterministic
   schedules, budget enforcement, a model-checked state machine, and
   jobs>1 leaving retry accounting untouched. *)

module Resilience = Genalg_resilience.Resilience
module Fault = Genalg_fault.Fault
module Par = Genalg_par.Par
module Q = QCheck2

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

let default = Resilience.default_policy

(* ---- backoff schedules ------------------------------------------------- *)

let backoff_props =
  [
    qtest "delay_for is a pure function of (seed, site, attempt)"
      Q.Gen.(triple (int_bound 10_000) (int_bound 20) (int_range 1 8))
      (fun (seed, site_n, attempt) ->
        let site = Printf.sprintf "source.s%d" site_n in
        Resilience.delay_for default ~seed ~site ~attempt
        = Resilience.delay_for default ~seed ~site ~attempt);
    qtest "jitter stays within +/- jitter of the exponential base"
      Q.Gen.(triple (int_bound 10_000) (int_bound 20) (int_range 1 8))
      (fun (seed, site_n, attempt) ->
        let site = Printf.sprintf "source.s%d" site_n in
        let b = default.Resilience.backoff in
        let base =
          Float.min b.Resilience.max_delay_s
            (b.Resilience.initial_s
            *. (b.Resilience.multiplier ** float_of_int (attempt - 1)))
        in
        let d = Resilience.delay_for default ~seed ~site ~attempt in
        d >= base *. (1. -. b.Resilience.jitter) -. 1e-9
        && d <= base *. (1. +. b.Resilience.jitter) +. 1e-9);
    qtest "schedule sum never exceeds the budget"
      Q.Gen.(
        quad (int_bound 10_000) (int_bound 20) (int_range 1 12)
          (float_range 0.01 3.0))
      (fun (seed, site_n, max_attempts, budget_s) ->
        let site = Printf.sprintf "s%d" site_n in
        let policy = { default with Resilience.max_attempts; budget_s } in
        let ds = Resilience.delays policy ~seed ~site in
        List.length ds <= max_attempts - 1
        && List.fold_left ( +. ) 0. ds <= budget_s +. 1e-9);
  ]

(* ---- run --------------------------------------------------------------- *)

let test_run_first_try () =
  let o = Resilience.run ~site:"s" (fun () -> Ok 42) in
  checkb "ok" true (o.Resilience.result = Ok 42);
  checki "attempts" 1 o.Resilience.attempts;
  Alcotest.check (Alcotest.float 1e-9) "no backoff" 0. o.Resilience.backoff_s

let test_run_recovers () =
  let n = ref 0 in
  let o =
    Resilience.run ~site:"s" (fun () ->
        incr n;
        if !n < 3 then Error "transient" else Ok !n)
  in
  checkb "ok" true (o.Resilience.result = Ok 3);
  checki "attempts" 3 o.Resilience.attempts;
  checkb "backoff charged" true (o.Resilience.backoff_s > 0.)

let test_run_exhausts () =
  let n = ref 0 in
  let o =
    Resilience.run ~site:"s" (fun () ->
        incr n;
        Error "down")
  in
  checkb "error" true (o.Resilience.result = Error "down");
  checki "all attempts used" default.Resilience.max_attempts
    o.Resilience.attempts;
  checki "calls made" default.Resilience.max_attempts !n

let test_run_budget_stops_early () =
  (* delays of ~1 s against a 0.1 s budget: no retry is affordable *)
  let policy =
    { default with
      Resilience.backoff =
        { Resilience.initial_s = 1.0; multiplier = 2.0; max_delay_s = 5.0;
          jitter = 0. };
      budget_s = 0.1 }
  in
  let n = ref 0 in
  let o =
    Resilience.run ~policy ~site:"s" (fun () ->
        incr n;
        Error "down")
  in
  checki "single attempt" 1 o.Resilience.attempts;
  checkb "budget respected" true
    (o.Resilience.backoff_s <= policy.Resilience.budget_s)

let test_run_catches_exceptions () =
  let o = Resilience.run ~site:"s" (fun () -> failwith "kaboom") in
  checkb "failure result" true (Result.is_error o.Resilience.result)

let test_run_reraises_crash_points () =
  match
    Resilience.run ~site:"s" (fun () -> raise (Fault.Crash_point "cp"))
  with
  | exception Fault.Crash_point "cp" -> ()
  | _ -> Alcotest.fail "Crash_point must never be retried or absorbed"

let test_run_deterministic_accounting () =
  let go () =
    let n = ref 0 in
    let o =
      Resilience.run ~seed:5 ~site:"s" (fun () ->
          incr n;
          if !n < 4 then Error "x" else Ok ())
    in
    (o.Resilience.attempts, o.Resilience.backoff_s)
  in
  checkb "same seed, same accounting" true (go () = go ())

(* ---- circuit breaker: model-checked state machine ---------------------- *)

(* reference model of the documented protocol *)
type mstate = MClosed of int | MOpen of int

let model_step ~threshold ~cooldown st outcome =
  match st with
  | MClosed k ->
      if outcome then (true, MClosed 0)
      else if k + 1 >= threshold then (true, MOpen 0)
      else (true, MClosed (k + 1))
  | MOpen r ->
      if r + 1 >= cooldown then
        (* this call is the half-open probe *)
        if outcome then (true, MClosed 0) else (true, MOpen 0)
      else (false, MOpen (r + 1))

let state_of = function
  | MClosed _ -> Resilience.Breaker.Closed
  | MOpen _ -> Resilience.Breaker.Open

let breaker_model =
  qtest ~count:300 "breaker follows the modelled state machine"
    Q.Gen.(triple (int_range 1 4) (int_range 1 4) (list_size (int_bound 60) bool))
    (fun (threshold, cooldown, outcomes) ->
      let b =
        Resilience.Breaker.create ~failure_threshold:threshold
          ~cooldown_calls:cooldown ()
      in
      let st = ref (MClosed 0) in
      List.for_all
        (fun outcome ->
          let allowed = Resilience.Breaker.allow b in
          if allowed then
            if outcome then Resilience.Breaker.success b
            else Resilience.Breaker.failure b;
          let m_allowed, m_next =
            model_step ~threshold ~cooldown !st outcome
          in
          st := m_next;
          allowed = m_allowed
          && Resilience.Breaker.state b = state_of !st)
        outcomes)

let test_breaker_walkthrough () =
  let b = Resilience.Breaker.create ~failure_threshold:2 ~cooldown_calls:2 () in
  let open Resilience.Breaker in
  checkb "starts closed" true (state b = Closed);
  checkb "allows" true (allow b);
  failure b;
  checkb "one failure keeps closed" true (state b = Closed);
  checkb "allows" true (allow b);
  failure b;
  checkb "threshold trips open" true (state b = Open);
  checkb "refusal 1" false (allow b);
  checkb "still open" true (state b = Open);
  checkb "cooldown served: probe allowed" true (allow b);
  success b;
  checkb "probe success recloses" true (state b = Closed)

(* ---- parallelism does not change per-call accounting ------------------- *)

let test_jobs_accounting_identical () =
  (* each work item fails a deterministic number of times before
     succeeding; its retry accounting must not depend on which domain
     runs it *)
  let work i =
    let n = ref 0 in
    let o =
      Resilience.run ~seed:9
        ~site:(Printf.sprintf "item.%d" i)
        (fun () ->
          incr n;
          if !n <= i mod 3 then Error "transient" else Ok (i * 10))
    in
    (o.Resilience.result, o.Resilience.attempts, o.Resilience.backoff_s)
  in
  let items = List.init 16 Fun.id in
  let prev = Par.jobs () in
  Fun.protect
    ~finally:(fun () -> Par.set_jobs prev)
    (fun () ->
      Par.set_jobs 1;
      let seq = Par.parallel_map_list work items in
      Par.set_jobs 4;
      let par = Par.parallel_map_list work items in
      checkb "jobs=4 accounting identical to jobs=1" true (seq = par))

(* Breakers are per-dependency: a parallel fan-out gives each work item
   its own. The half-open protocol — exactly one probe once the cooldown
   is served, its outcome deciding reclose-vs-reopen — must yield the
   same decision trace whatever domain runs the item. *)

let drive_breaker (threshold, cooldown, outcomes) =
  let b =
    Resilience.Breaker.create ~failure_threshold:threshold
      ~cooldown_calls:cooldown ()
  in
  List.map
    (fun outcome ->
      let allowed = Resilience.Breaker.allow b in
      if allowed then
        if outcome then Resilience.Breaker.success b
        else Resilience.Breaker.failure b;
      (allowed, Resilience.Breaker.state b))
    outcomes

let breaker_jobs_prop =
  qtest ~count:100 "half-open probe transitions identical under jobs>1"
    Q.Gen.(
      list_size (int_range 1 8)
        (triple (int_range 1 3) (int_range 1 3)
           (list_size (int_bound 40) bool)))
    (fun scenarios ->
      let prev = Par.jobs () in
      Fun.protect
        ~finally:(fun () -> Par.set_jobs prev)
        (fun () ->
          Par.set_jobs 1;
          let seq = Par.parallel_map_list drive_breaker scenarios in
          Par.set_jobs 4;
          let par = Par.parallel_map_list drive_breaker scenarios in
          seq = par
          && List.for_all2
               (fun (threshold, cooldown, outcomes) trace ->
                 let st = ref (MClosed 0) in
                 List.for_all2
                   (fun outcome (allowed, after) ->
                     let m_allowed, m_next =
                       model_step ~threshold ~cooldown !st outcome
                     in
                     st := m_next;
                     allowed = m_allowed && after = state_of !st)
                   outcomes trace)
               scenarios seq))

let suites =
  [
    ("resilience:backoff", backoff_props);
    ( "resilience:run",
      [
        Alcotest.test_case "first try" `Quick test_run_first_try;
        Alcotest.test_case "recovers after failures" `Quick test_run_recovers;
        Alcotest.test_case "exhausts attempts" `Quick test_run_exhausts;
        Alcotest.test_case "budget stops retrying" `Quick
          test_run_budget_stops_early;
        Alcotest.test_case "exceptions count as failures" `Quick
          test_run_catches_exceptions;
        Alcotest.test_case "crash points re-raised" `Quick
          test_run_reraises_crash_points;
        Alcotest.test_case "deterministic accounting" `Quick
          test_run_deterministic_accounting;
      ] );
    ( "resilience:breaker",
      [
        breaker_model;
        Alcotest.test_case "documented walkthrough" `Quick
          test_breaker_walkthrough;
      ] );
    ( "resilience:par",
      [
        Alcotest.test_case "jobs>1 keeps retry accounting" `Quick
          test_jobs_accounting_identical;
        breaker_jobs_prop;
      ] );
  ]
