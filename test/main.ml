(* Aggregate all suites into one alcotest runner. *)

let () =
  Alcotest.run "genalg"
    (Test_gdt.suites @ Test_align.suites @ Test_seqindex.suites @ Test_core.suites
   @ Test_storage.suites @ Test_sqlx.suites @ Test_formats.suites @ Test_synth.suites
   @ Test_adapter.suites @ Test_etl.suites @ Test_mediator.suites
   @ Test_biolang.suites @ Test_xml.suites @ Test_integration.suites
   @ Test_capability.suites @ Test_genomic_index.suites @ Test_warehouse_extras.suites @ Test_stats.suites @ Test_robustness.suites @ Test_props.suites @ Test_obs.suites @ Test_cache.suites @ Test_par.suites
   @ Test_fault.suites @ Test_resilience.suites @ Test_crash_recovery.suites
   @ Test_serve.suites @ Test_optimizer.suites @ Test_vec.suites
   @ Test_shard.suites @ Test_cluster.suites)
