(* Crash-safe storage: interrupt Database.save at every registered crash
   point and prove the reopened file is never torn, plus checksum
   detection of bit-flipped pages, legacy-format loads and journal
   hygiene. *)

module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec
module Fault = Genalg_fault.Fault

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let ok = function Ok v -> v | Error m -> Alcotest.fail m

let with_tmp_db f =
  let path = Filename.temp_file "genalg_crash" ".db" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      List.iter
        (fun file -> if Sys.file_exists file then Sys.remove file)
        [ path; path ^ ".tmp"; path ^ ".journal" ])
    (fun () -> f path)

let count_rows db =
  match Exec.query db ~actor:"u" "SELECT k FROM t" with
  | Ok (Exec.Rows rs) -> List.length rs.Exec.rows
  | _ -> -1

(* ---- clean path -------------------------------------------------------- *)

let test_clean_save_leaves_no_artifacts () =
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ignore (ok (Exec.query db ~actor:"u" "INSERT INTO t VALUES (1)"));
      ok (Db.save db path);
      checkb "no journal left" false (Sys.file_exists (path ^ ".journal"));
      checkb "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
      checks "clean open" "no-journal" (Db.recovery_to_string (Db.recover path));
      checki "round-trip rows" 1 (count_rows (ok (Db.load path))))

(* ---- the crash matrix -------------------------------------------------- *)

(* Interrupt save at each protocol point in order. Each interrupted save
   carries exactly one new row, so the pre- and post-save states are
   distinguishable on disk; the reopened database must hold one of the
   two — never a torn in-between. *)
let test_crash_matrix () =
  checkb "crash points registered" true (Db.crash_points <> []);
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ignore (ok (Exec.query db ~actor:"u" "INSERT INTO t VALUES (0)"));
      ok (Db.save db path);
      let file_rows = ref 1 and mem_rows = ref 1 in
      List.iter
        (fun site ->
          incr mem_rows;
          ignore
            (ok
               (Exec.query db ~actor:"u"
                  (Printf.sprintf "INSERT INTO t VALUES (%d)" !mem_rows)));
          (match Fault.configure (site ^ ":crash:times=1") with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          (match Db.save db path with
          | exception Fault.Crash_point s ->
              checks (site ^ " crashes at itself") site s
          | Ok () | Error _ ->
              Alcotest.failf "%s: save was not interrupted" site);
          Fault.disable ();
          ignore (Db.recover path);
          let rows = count_rows (ok (Db.load path)) in
          (* the new image survives only once it fully reached the tmp
             file; before that the old image must be intact *)
          let expected =
            match site with
            | "storage.save.tmp" | "storage.save.rename"
            | "storage.save.dir_sync" ->
                !mem_rows
            | _ -> !file_rows
          in
          checki (site ^ ": pre- or post-save state, never torn") expected rows;
          checkb (site ^ ": journal cleared") false
            (Sys.file_exists (path ^ ".journal"));
          checkb (site ^ ": tmp cleared") false
            (Sys.file_exists (path ^ ".tmp"));
          file_rows := expected)
        Db.crash_points;
      (* an uninterrupted save still works after all that *)
      ok (Db.save db path);
      checki "final clean save" !mem_rows (count_rows (ok (Db.load path))))

let test_recovery_outcomes_per_point () =
  (* the specific recovery verdict for the interesting points *)
  let expect =
    [
      ("storage.save.serialize", "no-journal");   (* nothing written yet *)
      ("storage.save.journal", "rolled-back");    (* torn/absent new image *)
      ("storage.save.tmp_partial", "rolled-back");
      ("storage.save.tmp", "rolled-forward");     (* complete image promoted *)
      ("storage.save.rename", "completed");       (* only the clear replayed *)
      ("storage.save.dir_sync", "completed");     (* dir entry already durable *)
    ]
  in
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ignore (ok (Exec.query db ~actor:"u" "INSERT INTO t VALUES (0)"));
      ok (Db.save db path);
      let n = ref 0 in
      List.iter
        (fun (site, verdict) ->
          checkb (site ^ " is a registered point") true
            (List.mem site Db.crash_points);
          incr n;
          ignore
            (ok
               (Exec.query db ~actor:"u"
                  (Printf.sprintf "INSERT INTO t VALUES (%d)" !n)));
          (match Fault.configure (site ^ ":crash:times=1") with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          (match Db.save db path with
          | exception Fault.Crash_point _ -> ()
          | _ -> Alcotest.failf "%s: save was not interrupted" site);
          Fault.disable ();
          checks site verdict (Db.recovery_to_string (Db.recover path)))
        expect)

(* ---- ANALYZE statistics persistence ------------------------------------ *)

let test_analyze_stats_crash_never_torn () =
  (* a crash while persisting freshly-ANALYZEd statistics must recover
     to the pre-ANALYZE image (no stats) or the post-ANALYZE image
     (complete stats) — never a torn in-between *)
  let module Table = Genalg_storage.Table in
  let table_of db =
    match Db.resolve db ~actor:"u" "t" with
    | Some (_, t) -> t
    | None -> Alcotest.fail "table t missing after reload"
  in
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      for i = 1 to 20 do
        ignore
          (ok
             (Exec.query db ~actor:"u"
                (Printf.sprintf "INSERT INTO t VALUES (%d)" i)))
      done;
      ok (Db.save db path);
      ignore (ok (Exec.query db ~actor:"u" "ANALYZE t"));
      (* crash before anything durable: the old stats-free image wins *)
      (match Fault.configure "storage.save.stats:crash:times=1" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Db.save db path with
      | exception Fault.Crash_point _ -> ()
      | _ -> Alcotest.fail "save was not interrupted");
      Fault.disable ();
      ignore (Db.recover path);
      let old_db = ok (Db.load path) in
      checkb "pre-ANALYZE image has no stats" false
        (Table.has_stats (table_of old_db));
      checki "rows intact" 20 (count_rows old_db);
      (* crash after the complete tmp image: the new stats survive *)
      (match Fault.configure "storage.save.tmp:crash:times=1" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Db.save db path with
      | exception Fault.Crash_point _ -> ()
      | _ -> Alcotest.fail "save was not interrupted");
      Fault.disable ();
      ignore (Db.recover path);
      let new_db = ok (Db.load path) in
      let reloaded = table_of new_db in
      checkb "post-ANALYZE image carries stats" true (Table.has_stats reloaded);
      checki "rows intact" 20 (count_rows new_db);
      (* the persisted snapshot matches the live one, column for column *)
      let live = Table.stats_snapshot (table_of db) in
      let persisted = Table.stats_snapshot reloaded in
      checki "same analyzed columns" (List.length live) (List.length persisted);
      List.iter2
        (fun (lc, ls) (pc, ps) ->
          checks "column name" lc pc;
          checkb ("stats round-trip for " ^ lc) true (ls = ps))
        live persisted)

(* ---- checksum detection ------------------------------------------------ *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let contents =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string contents in
  let pos = if pos >= 0 then pos else Bytes.length b + pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_bytes oc b)

let test_bit_flip_detected () =
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      for i = 1 to 50 do
        ignore
          (ok
             (Exec.query db ~actor:"u"
                (Printf.sprintf "INSERT INTO t VALUES (%d)" i)))
      done;
      ok (Db.save db path);
      (* flip a bit inside the last chunk's data, well past the header *)
      flip_byte path (-5);
      match Db.load path with
      | Ok _ -> Alcotest.fail "bit flip went undetected"
      | Error msg ->
          checkb "error names the checksum" true
            (let lower = String.lowercase_ascii msg in
             let needle = "checksum" in
             let n = String.length needle and l = String.length lower in
             let rec mem i = i + n <= l && (String.sub lower i n = needle || mem (i + 1)) in
             mem 0))

let test_header_corruption_is_error_not_crash () =
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ok (Db.save db path);
      (* mangle the chunk-count field: must surface as Error, not raise *)
      flip_byte path (String.length "GENALGDB2" + 2);
      checkb "corrupt header is a clean Error" true
        (Result.is_error (Db.load path)))

(* ---- format compatibility and journal hygiene -------------------------- *)

let test_legacy_v1_loads () =
  with_tmp_db (fun path ->
      (* a bare pre-checksum v1 image: magic + zero table count *)
      let buf = Buffer.create 24 in
      Buffer.add_string buf "GENALGDB1";
      Buffer.add_int64_le buf 0L;
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc (Buffer.contents buf));
      let db = ok (Db.load path) in
      checki "legacy image loads empty" 0 (Db.table_count db))

let test_garbage_journal_rolled_back () =
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ignore (ok (Exec.query db ~actor:"u" "INSERT INTO t VALUES (7)"));
      ok (Db.save db path);
      let oc = open_out_bin (path ^ ".journal") in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc "not a journal at all");
      checks "garbage journal rolled back" "rolled-back"
        (Db.recovery_to_string (Db.recover path));
      checkb "journal cleared" false (Sys.file_exists (path ^ ".journal"));
      checki "image intact" 1 (count_rows (ok (Db.load path))))

let test_stray_tmp_removed () =
  with_tmp_db (fun path ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ok (Db.save db path);
      let oc = open_out_bin (path ^ ".tmp") in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc "leftover");
      checks "no journal, stray tmp" "no-journal"
        (Db.recovery_to_string (Db.recover path));
      checkb "stray tmp removed" false (Sys.file_exists (path ^ ".tmp"));
      checkb "image intact" true (Result.is_ok (Db.load path)))

let suites =
  [
    ( "crash-recovery:matrix",
      [
        Alcotest.test_case "clean save leaves no artifacts" `Quick
          test_clean_save_leaves_no_artifacts;
        Alcotest.test_case "every crash point recovers untorn" `Quick
          test_crash_matrix;
        Alcotest.test_case "recovery verdict per crash point" `Quick
          test_recovery_outcomes_per_point;
        Alcotest.test_case "ANALYZE stats crash never torn" `Quick
          test_analyze_stats_crash_never_torn;
      ] );
    ( "crash-recovery:checksum",
      [
        Alcotest.test_case "bit flip detected on load" `Quick
          test_bit_flip_detected;
        Alcotest.test_case "corrupt header is a clean error" `Quick
          test_header_corruption_is_error_not_crash;
      ] );
    ( "crash-recovery:format",
      [
        Alcotest.test_case "legacy v1 image loads" `Quick test_legacy_v1_loads;
        Alcotest.test_case "garbage journal rolled back" `Quick
          test_garbage_journal_rolled_back;
        Alcotest.test_case "stray tmp removed" `Quick test_stray_tmp_removed;
      ] );
  ]
