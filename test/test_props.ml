(* Property-based tests (QCheck) on core data structures and invariants. *)

open Genalg_gdt
module Q = QCheck2

let dna_letters = "ACGT"
let iupac_letters = "ACGTRYSWKMBDHVN"
let protein_letters = "ACDEFGHIKLMNPQRSTVWY"

let string_over letters =
  Q.Gen.(
    let letter = map (fun i -> letters.[i]) (int_bound (String.length letters - 1)) in
    map
      (fun cs -> String.init (List.length cs) (List.nth cs))
      (list_size (int_bound 200) letter))

let dna_gen = string_over dna_letters
let iupac_gen = string_over iupac_letters
let protein_gen = string_over protein_letters

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count:200 ~name gen prop)

(* ---- sequence invariants ------------------------------------------------ *)

let seq_props =
  [
    qtest "to_string (of_string s) = s" iupac_gen (fun s ->
        Sequence.to_string (Sequence.dna s) = s);
    qtest "revcomp is an involution" iupac_gen (fun s ->
        let seq = Sequence.dna s in
        Sequence.equal (Sequence.reverse_complement (Sequence.reverse_complement seq)) seq);
    qtest "complement preserves length" iupac_gen (fun s ->
        let seq = Sequence.dna s in
        Sequence.length (Sequence.complement seq) = Sequence.length seq);
    qtest "binary serialization round-trips (DNA)" iupac_gen (fun s ->
        let seq = Sequence.dna s in
        match Sequence.of_bytes (Sequence.to_bytes seq) with
        | Ok seq2 -> Sequence.equal seq seq2
        | Error _ -> false);
    qtest "binary serialization round-trips (protein)" protein_gen (fun s ->
        let seq = Sequence.protein s in
        match Sequence.of_bytes (Sequence.to_bytes seq) with
        | Ok seq2 -> Sequence.equal seq seq2
        | Error _ -> false);
    qtest "dna->rna->dna is the identity" dna_gen (fun s ->
        let seq = Sequence.dna s in
        Sequence.equal (Sequence.to_dna (Sequence.to_rna seq)) seq);
    qtest "sub covers concat" Q.Gen.(pair dna_gen dna_gen) (fun (a, b) ->
        let sa = Sequence.dna a and sb = Sequence.dna b in
        let joined = Sequence.append sa sb in
        Sequence.equal (Sequence.sub joined ~pos:0 ~len:(Sequence.length sa)) sa
        && Sequence.equal
             (Sequence.sub joined ~pos:(Sequence.length sa) ~len:(Sequence.length sb))
             sb);
    qtest "find agrees with a naive scan" Q.Gen.(pair dna_gen dna_gen) (fun (text, pat) ->
        let pat = if String.length pat > 5 then String.sub pat 0 5 else pat in
        Q.assume (String.length pat > 0);
        let seq = Sequence.dna text in
        Sequence.find_all ~pattern:pat seq
        = Genalg_seqindex.Search.naive_find_all ~pattern:pat text);
    qtest "gc_count <= length" iupac_gen (fun s ->
        let seq = Sequence.dna s in
        Sequence.gc_count seq <= Sequence.length seq);
  ]

(* ---- central dogma laws --------------------------------------------------- *)

let gene_gen =
  Q.Gen.(
    map
      (fun (seed, exons) ->
        let rng = Genalg_synth.Rng.make seed in
        Genalg_synth.Genegen.gene rng ~exon_count:(1 + exons) ~id:"prop" ())
      (pair (int_bound 10000) (int_bound 4)))

let dogma_props =
  [
    qtest "transcribe preserves length" gene_gen (fun g ->
        Genalg_gdt.Transcript.primary_length (Genalg_core.Ops.transcribe g) = Gene.length g);
    qtest "splice yields the exonic length" gene_gen (fun g ->
        let m = Genalg_core.Ops.splice (Genalg_core.Ops.transcribe g) in
        Genalg_gdt.Transcript.mrna_length m = Gene.exonic_length g);
    qtest "decode succeeds on generated genes and starts with Met" gene_gen (fun g ->
        match Genalg_core.Ops.decode g with
        | Ok p -> Protein.length p > 0 && Sequence.get p.Protein.residues 0 = 'M'
        | Error _ -> false);
    qtest "reverse_transcribe inverts sequence-level transcription" dna_gen (fun s ->
        let seq = Sequence.dna s in
        Sequence.equal (Genalg_core.Ops.reverse_transcribe (Sequence.to_rna seq)) seq);
    qtest "all 64 codons translate in every registered code" Q.Gen.(int_bound 63)
      (fun i ->
        let codon =
          let bases = "TCAG" in
          String.init 3 (fun k ->
              bases.[match k with 0 -> i / 16 | 1 -> i / 4 mod 4 | _ -> i mod 4])
        in
        List.for_all
          (fun code ->
            match Genetic_code.translate_codon code codon with _ -> true)
          (Genetic_code.all ()));
  ]

(* ---- alignment & diff ------------------------------------------------------- *)

let align_props =
  [
    qtest "self-alignment score equals self-score" dna_gen (fun s ->
        Q.assume (String.length s > 0);
        let matrix = Genalg_align.Scoring.dna ~match_:1 ~mismatch:(-1) in
        let score =
          Genalg_align.Pairwise.score_only ~mode:Genalg_align.Pairwise.Global ~matrix
            ~gap:(Genalg_align.Scoring.linear_gap 1) ~query:s ~subject:s ()
        in
        score = String.length s);
    qtest "alignment score is symmetric (global, symmetric matrix)"
      Q.Gen.(pair dna_gen dna_gen)
      (fun (a, b) ->
        let matrix = Genalg_align.Scoring.dna ~match_:1 ~mismatch:(-1) in
        let gap = Genalg_align.Scoring.linear_gap 1 in
        let s1 =
          Genalg_align.Pairwise.score_only ~mode:Genalg_align.Pairwise.Global ~matrix ~gap
            ~query:a ~subject:b ()
        in
        let s2 =
          Genalg_align.Pairwise.score_only ~mode:Genalg_align.Pairwise.Global ~matrix ~gap
            ~query:b ~subject:a ()
        in
        s1 = s2);
    qtest "local score >= 0 and >= any exact shared substring" Q.Gen.(pair dna_gen dna_gen)
      (fun (a, b) ->
        let matrix = Genalg_align.Scoring.dna ~match_:1 ~mismatch:(-1) in
        let s =
          Genalg_align.Pairwise.score_only ~mode:Genalg_align.Pairwise.Local ~matrix
            ~gap:(Genalg_align.Scoring.linear_gap 1) ~query:a ~subject:b ()
        in
        s >= 0);
    qtest "diff applies to produce the target" Q.Gen.(pair dna_gen dna_gen) (fun (a, b) ->
        let arr s = Array.init (String.length s) (String.get s) in
        let script = Genalg_align.Lcs.diff ~equal:Char.equal (arr a) (arr b) in
        match Genalg_align.Lcs.apply script (arr a) with
        | Some out -> String.init (Array.length out) (Array.get out) = b
        | None -> false);
    qtest "LCS length = kept elements of the diff" Q.Gen.(pair dna_gen dna_gen)
      (fun (a, b) ->
        let arr s = Array.init (String.length s) (String.get s) in
        let script = Genalg_align.Lcs.diff ~equal:Char.equal (arr a) (arr b) in
        let keeps =
          List.length
            (List.filter (function Genalg_align.Lcs.Keep _ -> true | _ -> false) script)
        in
        keeps = Genalg_align.Lcs.length ~equal:Char.equal (arr a) (arr b));
    qtest "levenshtein triangle inequality" Q.Gen.(triple dna_gen dna_gen dna_gen)
      (fun (a, b, c) ->
        let d = Genalg_align.Distance.levenshtein in
        d a c <= d a b + d b c);
  ]

(* ---- index structures --------------------------------------------------------- *)

let index_props =
  [
    qtest "suffix array finds what the scan finds" Q.Gen.(pair dna_gen (int_bound 1000))
      (fun (text, seed) ->
        Q.assume (String.length text >= 4);
        let rng = Genalg_synth.Rng.make seed in
        let plen = 1 + Genalg_synth.Rng.int rng (min 6 (String.length text)) in
        let off = Genalg_synth.Rng.int rng (String.length text - plen + 1) in
        let pattern = String.sub text off plen in
        Genalg_seqindex.Suffix_array.find_all (Genalg_seqindex.Suffix_array.build text) pattern
        = Genalg_seqindex.Search.naive_find_all ~pattern text);
    qtest "kmer index finds what the scan finds" Q.Gen.(pair dna_gen (int_bound 1000))
      (fun (text, seed) ->
        Q.assume (String.length text >= 8);
        let rng = Genalg_synth.Rng.make seed in
        let plen = 4 + Genalg_synth.Rng.int rng (min 8 (String.length text - 3)) in
        Q.assume (plen <= String.length text);
        let off = Genalg_synth.Rng.int rng (String.length text - plen + 1) in
        let pattern = String.sub text off plen in
        Genalg_seqindex.Kmer_index.find_all
          (Genalg_seqindex.Kmer_index.build ~k:4 text)
          pattern
        = Genalg_seqindex.Search.naive_find_all ~pattern text);
  ]

(* ---- storage ---------------------------------------------------------------------- *)

let storage_props =
  [
    qtest "btree agrees with an association-list model"
      Q.Gen.(list_size (int_bound 300) (pair (int_bound 50) (int_bound 1000)))
      (fun pairs ->
        let module Bt = Genalg_storage.Btree in
        let module D = Genalg_storage.Dtype in
        let t = Bt.create () in
        let model = Hashtbl.create 16 in
        List.iteri
          (fun i (k, _) ->
            let rid = { Genalg_storage.Heap.page = i; slot = 0 } in
            Bt.insert t (D.Int k) rid;
            Hashtbl.replace model k
              (rid :: Option.value (Hashtbl.find_opt model k) ~default:[]))
          pairs;
        Hashtbl.fold
          (fun k expected ok ->
            ok && Bt.find t (D.Int k) = List.rev expected)
          model true);
    qtest "row encoding round-trips"
      Q.Gen.(
        list_size (int_bound 12)
          (oneof
             [
               return Genalg_storage.Dtype.Null;
               map (fun b -> Genalg_storage.Dtype.Bool b) bool;
               map (fun i -> Genalg_storage.Dtype.Int i) int;
               map (fun f -> Genalg_storage.Dtype.Float f) (float_bound_inclusive 1e6);
               map (fun s -> Genalg_storage.Dtype.Str s) string_printable;
             ]))
      (fun vals ->
        let module D = Genalg_storage.Dtype in
        let row = Array.of_list vals in
        let back = D.decode_row (D.encode_row row) in
        Array.length back = Array.length row
        && Array.for_all2 D.equal_value row back);
  ]

(* ---- formats & xml ------------------------------------------------------------------ *)

let entry_gen =
  Q.Gen.(
    map
      (fun seed ->
        let rng = Genalg_synth.Rng.make seed in
        List.hd (Genalg_synth.Recordgen.repository rng ~size:1 ~seq_length:300 ()))
      (int_bound 100000))

let format_props =
  [
    qtest "GenBank print/parse round-trips entries" entry_gen (fun e ->
        match Genalg_formats.Genbank.parse_one (Genalg_formats.Genbank.print_one e) with
        | Ok e2 -> Genalg_formats.Entry.equal e e2
        | Error _ -> false);
    qtest "EMBL print/parse round-trips entries" entry_gen (fun e ->
        match Genalg_formats.Embl.parse_one (Genalg_formats.Embl.print_one e) with
        | Ok e2 -> Genalg_formats.Entry.equal e e2
        | Error _ -> false);
    qtest "AceDB tree round-trips entries" entry_gen (fun e ->
        let tree = Genalg_formats.Acedb.of_entry e in
        match Genalg_formats.Acedb.parse (Genalg_formats.Acedb.print tree) with
        | Error _ -> false
        | Ok tree2 -> (
            match Genalg_formats.Acedb.to_entry tree2 with
            | Ok e2 -> Genalg_formats.Entry.equal e e2
            | Error _ -> false));
    qtest "GenAlgXML round-trips DNA values" iupac_gen (fun s ->
        let v = Genalg_core.Value.VDna (Sequence.dna s) in
        match Genalg_xml.Genalgxml.of_string (Genalg_xml.Genalgxml.to_string v) with
        | Ok v2 -> Genalg_core.Value.equal v v2
        | Error _ -> false);
    qtest "tree diff of a tree with itself is empty" entry_gen (fun e ->
        let tree = Genalg_formats.Acedb.of_entry e in
        Genalg_etl.Tree_diff.diff tree tree = []);
  ]

(* ---- new operations & genomic index ----------------------------------- *)

let protein20_gen = string_over "ACDEFGHIKLMNPQRSTVWY"

let extra_props =
  [
    qtest "back_translate: first-codon concretization translates back"
      protein20_gen
      (fun p ->
        Q.assume (String.length p > 0);
        let protein = Sequence.protein p in
        let consensus = Genalg_core.Ops.back_translate protein in
        (* concretize by picking each residue's first codon *)
        let concrete =
          String.concat ""
            (List.map
               (fun c ->
                 List.hd
                   (Genetic_code.back_translate Genetic_code.standard
                      (Amino_acid.of_char_exn c)))
               (List.init (String.length p) (String.get p)))
        in
        (* the concretization translates back to the protein ... *)
        let back =
          Genalg_core.Ops.translate_frame ~frame:0 (Sequence.dna concrete)
        in
        Sequence.equal back protein
        (* ... and matches the IUPAC consensus position-wise *)
        && Sequence.length consensus = String.length concrete
        && (let ok = ref true in
            String.iteri
              (fun i c ->
                let a = Nucleotide.of_char_exn c in
                let b = Nucleotide.of_char_exn (Sequence.get consensus i) in
                if not (Nucleotide.matches a b) then ok := false)
              concrete;
            !ok));
    qtest "longest_repeat really occurs twice" dna_gen (fun s ->
        Q.assume (String.length s >= 2);
        match Genalg_core.Ops.longest_repeat (Sequence.dna s) with
        | None -> true
        | Some (p1, p2, len) ->
            p1 <> p2 && len > 0
            && p1 + len <= String.length s
            && p2 + len <= String.length s
            && String.sub s p1 len = String.sub s p2 len);
    qtest "genomic index agrees with a scan (table level)"
      Q.Gen.(pair (int_bound 10000) (int_bound 10000))
      (fun (seed, pseed) ->
        let module Db = Genalg_storage.Database in
        let module Table = Genalg_storage.Table in
        let module D = Genalg_storage.Dtype in
        let rng = Genalg_synth.Rng.make seed in
        let db = Db.create () in
        Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
        let schema =
          Genalg_storage.Schema.make_exn
            [
              { Genalg_storage.Schema.name = "id"; dtype = D.TInt; nullable = false };
              { Genalg_storage.Schema.name = "seq"; dtype = D.TOpaque "dna"; nullable = false };
            ]
        in
        let table =
          Result.get_ok
            (Db.create_table db ~actor:Db.loader_actor ~space:Db.Public ~name:"t" schema)
        in
        let texts =
          List.init 30 (fun i ->
              let t = Genalg_synth.Seqgen.dna_string rng (30 + Genalg_synth.Rng.int rng 60) in
              ignore
                (Table.insert_exn table
                   [| D.Int i; D.Opaque ("dna", Sequence.to_bytes (Sequence.dna t)) |]);
              t)
        in
        ignore (Table.create_genomic_index ~k:6 table ~column:"seq" ~registry:(Db.udts db));
        let prng = Genalg_synth.Rng.make pseed in
        let source = List.nth texts (Genalg_synth.Rng.int prng 30) in
        let plen = 6 + Genalg_synth.Rng.int prng 8 in
        let off = Genalg_synth.Rng.int prng (max 1 (String.length source - plen)) in
        let pattern = String.sub source off (min plen (String.length source - off)) in
        let expected =
          List.filteri (fun _ t -> Sequence.contains ~pattern (Sequence.dna t)) texts
          |> List.length
        in
        match Table.genomic_search table ~column:"seq" ~pattern with
        | `Hits hits -> List.length hits = expected
        | `Unsupported_pattern -> String.length pattern < 6
        | `No_index -> false);
  ]

(* ---- LRU cache invariants (lib/cache) ----------------------------------- *)
(* Random op sequences against a reference model: an MRU-first assoc list
   with the same admit/touch/evict rules. Lockstep execution lets us
   compare membership, values, recency order, and the exact eviction
   sequence (observed through on_evict). *)

module Lru = Genalg_cache.Lru

type lru_op = L_put of int * int | L_get of int | L_rm of int | L_pin of int | L_unpin of int

type lru_model_entry = { mk : int; mutable mv : int; mutable mpins : int }

let lru_cap = 8

let lru_ops_gen ~with_pins =
  Q.Gen.(
    let key = int_bound 15 in
    let base =
      [ (4, map2 (fun k v -> L_put (k, v)) key (int_bound 1000));
        (3, map (fun k -> L_get k) key);
        (1, map (fun k -> L_rm k) key) ]
    in
    let pins = [ (2, map (fun k -> L_pin k) key); (2, map (fun k -> L_unpin k) key) ] in
    list_size (int_bound 300) (frequency (if with_pins then base @ pins else base)))

(* Run the ops through a real cache and the model in lockstep. Returns
   (cache, model MRU-first, cache evictions, model evictions,
    every-op capacity bound held, every Get agreed with the model). *)
let lru_run ops =
  let cache_evictions = ref [] in
  let cache =
    Lru.create ~name:"props" ~max_entries:lru_cap
      ~on_evict:(fun k _ -> cache_evictions := k :: !cache_evictions)
      ()
  in
  let model = ref [] in
  let model_evictions = ref [] in
  let within_cap = ref true in
  let gets_coherent = ref true in
  let mfind k = List.find_opt (fun e -> e.mk = k) !model in
  let mdetach k = model := List.filter (fun e -> e.mk <> k) !model in
  let mtouch e =
    mdetach e.mk;
    model := e :: !model
  in
  let mevict () =
    (* evict the least-recent unpinned entry until within capacity *)
    let continue = ref true in
    while !continue && List.length !model > lru_cap do
      match List.fold_left (fun acc e -> if e.mpins = 0 then Some e else acc) None !model with
      | Some victim ->
          mdetach victim.mk;
          model_evictions := victim.mk :: !model_evictions
      | None -> continue := false
    done
  in
  List.iter
    (fun op ->
      (match op with
      | L_put (k, v) -> (
          Lru.put cache k v;
          (match mfind k with
          | Some e ->
              e.mv <- v;
              mtouch e
          | None -> model := { mk = k; mv = v; mpins = 0 } :: !model);
          mevict ())
      | L_get k -> (
          let got = Lru.find cache k in
          match mfind k with
          | Some e ->
              mtouch e;
              if got <> Some e.mv then gets_coherent := false
          | None -> if got <> None then gets_coherent := false)
      | L_rm k ->
          ignore (Lru.remove cache k);
          mdetach k
      | L_pin k -> (
          ignore (Lru.pin cache k);
          match mfind k with
          | Some e ->
              e.mpins <- e.mpins + 1;
              mtouch e
          | None -> ())
      | L_unpin k -> (
          Lru.unpin cache k;
          match mfind k with
          | Some e -> if e.mpins > 0 then e.mpins <- e.mpins - 1
          | None -> ()));
      if List.for_all (fun e -> e.mpins = 0) !model && Lru.length cache > lru_cap then
        within_cap := false)
    ops;
  (cache, !model, List.rev !cache_evictions, List.rev !model_evictions,
   !within_cap, !gets_coherent)

let lru_props =
  [
    qtest "capacity never exceeded (no pins)" (lru_ops_gen ~with_pins:false)
      (fun ops ->
        let cache, _, _, _, within_cap, _ = lru_run ops in
        within_cap && Lru.length cache <= lru_cap);
    qtest "pinned entries never evicted" (lru_ops_gen ~with_pins:true) (fun ops ->
        (* the model never evicts a pinned entry by construction, so a
           matching eviction sequence proves the cache didn't either *)
        let _, _, cache_ev, model_ev, _, _ = lru_run ops in
        cache_ev = model_ev);
    qtest "get-after-put coherence" (lru_ops_gen ~with_pins:true) (fun ops ->
        let cache, model, _, _, _, gets_coherent = lru_run ops in
        gets_coherent
        && List.for_all (fun e -> Lru.peek cache e.mk = Some e.mv) model
        && Lru.length cache = List.length model);
    qtest "eviction order matches recency under random ops"
      (lru_ops_gen ~with_pins:false) (fun ops ->
        let cache, model, cache_ev, model_ev, _, _ = lru_run ops in
        cache_ev = model_ev
        && Lru.keys cache = List.map (fun e -> e.mk) model);
  ]

let suites =
  [
    ("props.sequence", seq_props);
    ("props.dogma", dogma_props);
    ("props.align", align_props);
    ("props.index", index_props);
    ("props.storage", storage_props);
    ("props.formats", format_props);
    ("props.extra", extra_props);
    ("props.cache", lru_props);
  ]
