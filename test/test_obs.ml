(* Unit tests for the observability layer (lib/obs) and its integration
   with the query executor (EXPLAIN ANALYZE, storage counters). *)

module Obs = Genalg_obs.Obs
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Ast = Genalg_sqlx.Ast
module Parser = Genalg_sqlx.Parser
module Exec = Genalg_sqlx.Exec

let check = Alcotest.check
let tc = Alcotest.test_case

(* Every test runs against the process-wide registry, so each one resets
   and disables the layer on the way out, whatever happens. *)
let isolated f =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.remove_sink "memory";
      Obs.reset ())
    f

(* ---- counters and histograms ------------------------------------------- *)

let test_counter_gating () =
  isolated @@ fun () ->
  let c = Obs.counter "test.gated" in
  Obs.add c 5;
  check Alcotest.int "disabled adds are dropped" 0 (Obs.value c);
  Obs.set_enabled true;
  Obs.add c 3;
  Obs.add c 4;
  check Alcotest.int "enabled adds accumulate" 7 (Obs.value c);
  Obs.reset ();
  check Alcotest.int "reset zeroes" 0 (Obs.value c);
  (* re-registering the same name yields the same instrument *)
  Obs.add (Obs.counter "test.gated") 2;
  check Alcotest.int "registry dedups by name" 2 (Obs.value c)

let test_histogram_stats () =
  isolated @@ fun () ->
  Obs.set_enabled true;
  let h = Obs.histogram "test.hist" in
  List.iter (Obs.observe h) [ 0.002; 0.004; 0.006 ];
  let s = Obs.stats h in
  check Alcotest.int "count" 3 s.Obs.n;
  check (Alcotest.float 1e-9) "sum" 0.012 s.Obs.sum;
  check (Alcotest.float 1e-9) "min" 0.002 s.Obs.min;
  check (Alcotest.float 1e-9) "max" 0.006 s.Obs.max;
  check (Alcotest.float 1e-9) "mean" 0.004 s.Obs.mean;
  check Alcotest.int "observations land in buckets" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Obs.buckets h))

let test_instrument_kind_clash () =
  isolated @@ fun () ->
  ignore (Obs.counter "test.clash");
  check Alcotest.bool "histogram over counter name rejected" true
    (try
       ignore (Obs.histogram "test.clash");
       false
     with Invalid_argument _ -> true)

(* ---- spans -------------------------------------------------------------- *)

let test_span_nesting () =
  isolated @@ fun () ->
  Obs.set_enabled true;
  let sink, collected = Obs.memory_sink () in
  Obs.add_sink sink;
  let r =
    Obs.with_span "test.outer" (fun () ->
        Obs.with_span ~attrs:[ ("k", "v") ] "test.inner" (fun () -> 41) + 1)
  in
  check Alcotest.int "with_span returns the body's value" 42 r;
  match collected () with
  | [ inner; outer ] ->
      (* the inner span finishes (and is emitted) first *)
      check Alcotest.string "inner name" "test.inner" inner.Obs.span_name;
      check Alcotest.string "outer name" "test.outer" outer.Obs.span_name;
      check Alcotest.int "inner depth" 1 inner.Obs.depth;
      check Alcotest.int "outer depth" 0 outer.Obs.depth;
      check Alcotest.bool "attrs carried" true (inner.Obs.attrs = [ ("k", "v") ]);
      check Alcotest.bool "outer encloses inner" true
        (outer.Obs.elapsed_s >= inner.Obs.elapsed_s);
      (* each span also feeds the same-named histogram *)
      check Alcotest.int "span histogram observed" 1
        (Obs.stats (Obs.histogram "test.inner")).Obs.n
  | sps -> Alcotest.failf "expected 2 spans, got %d" (List.length sps)

let test_span_disabled_is_passthrough () =
  isolated @@ fun () ->
  let sink, collected = Obs.memory_sink () in
  Obs.add_sink sink;
  check Alcotest.int "body still runs" 7 (Obs.with_span "test.off" (fun () -> 7));
  check Alcotest.int "nothing emitted while disabled" 0 (List.length (collected ()));
  check Alcotest.int "no histogram samples" 0
    (Obs.stats (Obs.histogram "test.off")).Obs.n

(* ---- sink output stability ---------------------------------------------- *)

let test_json_output () =
  isolated @@ fun () ->
  Obs.set_enabled true;
  let lines = ref [] in
  Obs.add_sink (Obs.json_sink ~name:"memory" (fun l -> lines := l :: !lines));
  Obs.with_span ~attrs:[ ("table", "frag") ] "test.json" (fun () -> ());
  (match !lines with
  | [ l ] ->
      check Alcotest.bool "span json shape" true
        (String.length l > 0
        && l.[0] = '{'
        && l.[String.length l - 1] = '}');
      let has needle =
        let n = String.length needle and m = String.length l in
        let rec go i = i + n <= m && (String.sub l i n = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "name field" true (has {|"name":"test.json"|});
      check Alcotest.bool "attr field" true (has {|"table":"frag"|})
  | ls -> Alcotest.failf "expected 1 json line, got %d" (List.length ls));
  Obs.add (Obs.counter "test.json_counter") 9;
  let snap = Obs.render_json ~prefix:"test.json_counter" () in
  check Alcotest.string "counter json is stable"
    {|{"type":"counter","name":"test.json_counter","value":9}|} snap

let test_render_table () =
  isolated @@ fun () ->
  Obs.set_enabled true;
  Obs.add (Obs.counter "test.tbl.hits") 12;
  Obs.observe (Obs.histogram "test.tbl.lat") 0.5;
  let t = Obs.render_table ~prefix:"test.tbl." () in
  let lines = String.split_on_char '\n' t in
  check Alcotest.int "header + rule + 2 rows" 4 (List.length lines);
  let widths = List.map String.length lines in
  check Alcotest.bool "columns aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

(* ---- executor integration ----------------------------------------------- *)

let fixture_db () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error msg -> Alcotest.failf "fixture: %s (%s)" msg sql
  in
  ignore (run "CREATE TABLE frag (id int NOT NULL, organism string, len int)");
  for i = 1 to 20 do
    ignore
      (run
         (Printf.sprintf "INSERT INTO frag VALUES (%d, '%s', %d)" i
            (if i mod 2 = 0 then "ecoli" else "yeast")
            (i * 10)))
  done;
  db

let select_of sql =
  match Parser.parse sql with
  | Ok (Ast.Select s) -> s
  | _ -> Alcotest.failf "not a SELECT: %s" sql

let rows_of = function
  | Exec.Rows rs -> rs.Exec.rows
  | _ -> Alcotest.fail "expected rows"

(* first "rows=N" figure on a rendered plan line *)
let rendered_rows line =
  let tag = "rows=" in
  let n = String.length line in
  let rec find i =
    if i + 5 > n then Alcotest.failf "no rows= in %S" line
    else if String.sub line i 5 = tag then
      let j = ref (i + 5) in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do incr j done;
      int_of_string (String.sub line (i + 5) (!j - i - 5))
    else find (i + 1)
  in
  find 0

let test_profile_rows_match () =
  isolated @@ fun () ->
  let db = fixture_db () in
  List.iter
    (fun sql ->
      let rs, prof =
        match Exec.run_select_profiled db ~actor:"u" (select_of sql) with
        | Ok v -> v
        | Error msg -> Alcotest.failf "%s: %s" sql msg
      in
      check Alcotest.string ("root op for " ^ sql) "Select" prof.Exec.op;
      check Alcotest.int ("root rows for " ^ sql) (List.length rs.Exec.rows)
        prof.Exec.actual_rows;
      (* the rendered tree carries the same figure on its first line *)
      match Exec.render_profile prof with
      | root :: _ ->
          check Alcotest.int ("rendered rows for " ^ sql)
            (List.length rs.Exec.rows) (rendered_rows root)
      | [] -> Alcotest.fail "empty rendering")
    [
      "SELECT * FROM frag";
      "SELECT * FROM frag WHERE organism = 'ecoli'";
      "SELECT organism, count(*) FROM frag GROUP BY organism";
      "SELECT * FROM frag ORDER BY len DESC LIMIT 3";
      "SELECT a.id FROM frag a, frag b WHERE a.id = b.id AND a.len > 150";
    ]

let test_explain_analyze_statement () =
  isolated @@ fun () ->
  let db = fixture_db () in
  let q = "SELECT * FROM frag WHERE len > 100" in
  let actual = List.length (rows_of (Result.get_ok (Exec.query db ~actor:"u" q))) in
  check Alcotest.bool "fixture returns rows" true (actual > 0);
  match Exec.query db ~actor:"u" ("EXPLAIN ANALYZE " ^ q) with
  | Ok (Exec.Rows rs) ->
      check Alcotest.bool "single QUERY PLAN column" true
        (rs.Exec.columns = [ "QUERY PLAN" ]);
      (match rs.Exec.rows with
      | [| D.Str root |] :: _ ->
          check Alcotest.int "EXPLAIN ANALYZE row count matches execution" actual
            (rendered_rows root)
      | _ -> Alcotest.fail "expected string plan rows")
  | Ok _ -> Alcotest.fail "expected rows"
  | Error msg -> Alcotest.failf "EXPLAIN ANALYZE failed: %s" msg

let test_storage_counters_flow () =
  isolated @@ fun () ->
  let db = fixture_db () in
  Obs.set_enabled true;
  Obs.reset ();
  ignore (Exec.query db ~actor:"u" "SELECT * FROM frag");
  check Alcotest.int "one query counted" 1 (Obs.value (Obs.counter "sqlx.queries"));
  check Alcotest.int "full scan touches every row" 20
    (Obs.value (Obs.counter "storage.table.rows_scanned"));
  check Alcotest.int "result rows counted" 20
    (Obs.value (Obs.counter "sqlx.rows_out"));
  check Alcotest.bool "select span recorded" true
    ((Obs.stats (Obs.histogram "sqlx.select")).Obs.n = 1)

let suites =
  [
    ( "obs",
      [
        tc "counter gating and reset" `Quick test_counter_gating;
        tc "histogram stats" `Quick test_histogram_stats;
        tc "instrument kind clash" `Quick test_instrument_kind_clash;
        tc "span nesting" `Quick test_span_nesting;
        tc "spans disabled are passthrough" `Quick test_span_disabled_is_passthrough;
        tc "json output stability" `Quick test_json_output;
        tc "render_table alignment" `Quick test_render_table;
        tc "profile rows match results" `Quick test_profile_rows_match;
        tc "EXPLAIN ANALYZE statement" `Quick test_explain_analyze_statement;
        tc "storage counters flow" `Quick test_storage_counters_flow;
      ] );
  ]
