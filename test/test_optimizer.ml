(* Plan-equivalence and cost-model tests for the cost-based optimizer:
   the heuristic and cost-based planners must return identical result
   sets on every query (the plans may — and sometimes must — differ),
   histogram/estimator sanity, genomic access-path equivalence, and
   stale-statistics behaviour. *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Plan = Genalg_sqlx.Plan
module Exec = Genalg_sqlx.Exec
module Stats = Genalg_sqlx.Stats
module Cost = Genalg_sqlx.Cost
module Scoring = Genalg_align.Scoring
module Par = Genalg_par.Par

let check = Alcotest.check
let tc = Alcotest.test_case

let mk_db () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  db

let run db sql =
  match Exec.query db ~actor:Db.loader_actor sql with
  | Ok o -> o
  | Error m -> Alcotest.failf "%s: %s" sql m

let rows db sql =
  match Exec.query db ~actor:"u" sql with
  | Ok (Exec.Rows rs) -> (rs.Exec.columns, List.map Array.to_list rs.Exec.rows)
  | Ok _ -> Alcotest.failf "%s: expected rows" sql
  | Error m -> Alcotest.failf "%s: %s" sql m

(* result-set comparison is order-insensitive: access paths and join
   orders legitimately change row order (multiset semantics) *)
let sorted_rows db sql =
  let cols, rs = rows db sql in
  (cols, List.sort compare rs)

let with_mode m f =
  Exec.set_planner_mode m;
  Fun.protect ~finally:(fun () -> Exec.set_planner_mode Plan.Cost_based) f

let explain_text db sql =
  let _, rs = rows db ("EXPLAIN " ^ sql) in
  String.concat "\n"
    (List.map (function [ D.Str s ] -> s | _ -> "") rs)

let explain_analyze_text db sql =
  let _, rs = rows db ("EXPLAIN ANALYZE " ^ sql) in
  String.concat "\n"
    (List.map (function [ D.Str s ] -> s | _ -> "") rs)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- histogram construction ------------------------------------------- *)

let test_histogram_equi_depth () =
  let db = mk_db () in
  ignore (run db "CREATE TABLE h (v int)");
  for i = 1 to 1000 do
    ignore (run db (Printf.sprintf "INSERT INTO h VALUES (%d)" i))
  done;
  ignore (run db "ANALYZE h");
  let t = Option.get (Db.find_table db ~space:Db.Public "h") in
  match Table.column_stats t ~column:"v" with
  | Some { Table.histogram = Some h; _ } ->
      let nb = Array.length h.Table.bounds in
      check Alcotest.bool "bucket count in (0, 32]" true (nb > 0 && nb <= 32);
      check Alcotest.int "counts cover every non-null row" 1000
        (Array.fold_left ( + ) 0 h.Table.counts);
      for i = 1 to nb - 1 do
        check Alcotest.bool "bounds strictly ascending" true
          (D.compare_value h.Table.bounds.(i - 1) h.Table.bounds.(i) < 0)
      done;
      let target = (1000 / nb) + 1 in
      Array.iter
        (fun c ->
          check Alcotest.bool "equi-depth: no bucket over 2x target" true
            (c <= 2 * target))
        h.Table.counts
  | _ -> Alcotest.fail "expected a histogram on an analyzed int column"

let test_histogram_heavy_duplicates () =
  (* a dominant value must sit entirely inside its buckets: bounds stay
     strictly ascending (the builder extends buckets past duplicate
     runs) and the estimate for the heavy value stays accurate *)
  let db = mk_db () in
  ignore (run db "CREATE TABLE hd (v int)");
  for i = 1 to 500 do
    let v = if i mod 10 = 0 then i / 10 else 42 in
    ignore (run db (Printf.sprintf "INSERT INTO hd VALUES (%d)" v))
  done;
  ignore (run db "ANALYZE hd");
  let t = Option.get (Db.find_table db ~space:Db.Public "hd") in
  let cs = Option.get (Table.column_stats t ~column:"v") in
  (match cs.Table.histogram with
  | Some h ->
      let nb = Array.length h.Table.bounds in
      for i = 1 to nb - 1 do
        check Alcotest.bool "duplicate bounds merged" true
          (D.compare_value h.Table.bounds.(i - 1) h.Table.bounds.(i) < 0)
      done
  | None -> Alcotest.fail "expected a histogram");
  let truth =
    (* v <= 42: everything except i/10 values above 42 *)
    let n = ref 0 in
    for i = 1 to 500 do
      let v = if i mod 10 = 0 then i / 10 else 42 in
      if v <= 42 then incr n
    done;
    float_of_int !n /. 500.
  in
  match Stats.cmp_selectivity cs ~op:`Le (D.Int 42) with
  | Some s ->
      check Alcotest.bool
        (Printf.sprintf "heavy-value estimate %.3f within 0.07 of %.3f" s truth)
        true
        (Float.abs (s -. truth) <= 0.07)
  | None -> Alcotest.fail "estimator should answer with a histogram"

(* ---- estimator sanity -------------------------------------------------- *)

let test_estimator_bounded_error () =
  let db = mk_db () in
  ignore (run db "CREATE TABLE u (v int, maybe int)");
  for i = 1 to 1000 do
    ignore
      (run db
         (Printf.sprintf "INSERT INTO u VALUES (%d, %s)" i
            (if i mod 2 = 0 then string_of_int i else "NULL")))
  done;
  ignore (run db "ANALYZE u");
  let t = Option.get (Db.find_table db ~space:Db.Public "u") in
  let cs = Option.get (Table.column_stats t ~column:"v") in
  (* uniform 1..1000: |estimate - truth| bounded by ~one bucket width *)
  List.iter
    (fun (q, truth) ->
      match Stats.cmp_selectivity cs ~op:`Le (D.Int q) with
      | Some s ->
          check Alcotest.bool
            (Printf.sprintf "sel(v <= %d) = %.3f within 0.05 of %.3f" q s truth)
            true
            (Float.abs (s -. truth) <= 0.05)
      | None -> Alcotest.fail "estimator should answer")
    [ (250, 0.25); (500, 0.5); (900, 0.9) ];
  (match Stats.eq_selectivity cs with
  | Some s ->
      check Alcotest.bool "eq selectivity ~ 1/1000" true
        (Float.abs (s -. 0.001) <= 0.0005)
  | None -> Alcotest.fail "eq estimator should answer");
  (* nulls scale comparison selectivities by the non-null fraction *)
  let cm = Option.get (Table.column_stats t ~column:"maybe") in
  check Alcotest.bool "null fraction ~ 0.5" true
    (Float.abs (Stats.null_fraction cm -. 0.5) <= 0.01);
  match Stats.cmp_selectivity cm ~op:`Le (D.Int 1000) with
  | Some s ->
      check Alcotest.bool "nulls never satisfy comparisons" true
        (Float.abs (s -. 0.5) <= 0.05)
  | None -> Alcotest.fail "estimator should answer on the nullable column"

let test_resembles_bound_constants () =
  (* the seed-path safety bound is derived from Scoring.dna_default
     (match +2, mismatch -3, gap open 10 extend 1); if these constants
     move, Cost.resembles_min_len MUST be re-derived — fail loudly *)
  check Alcotest.int "dna match score" 2
    (Scoring.score Scoring.dna_default 'A' 'A');
  check Alcotest.int "dna mismatch score" (-3)
    (Scoring.score Scoring.dna_default 'A' 'C');
  check Alcotest.int "gap open" 10 Scoring.default_gap.Scoring.open_penalty;
  check Alcotest.int "gap extend" 1 Scoring.default_gap.Scoring.extend_penalty;
  check
    Alcotest.(option int)
    "k=8 t=0.9 -> 18" (Some 18)
    (Cost.resembles_min_len ~k:8 ~threshold:0.9);
  check
    Alcotest.(option int)
    "k=4 t=0.8 -> 9" (Some 9)
    (Cost.resembles_min_len ~k:4 ~threshold:0.8);
  check
    Alcotest.(option int)
    "k=8 t=0.8 below the usable threshold" None
    (Cost.resembles_min_len ~k:8 ~threshold:0.8);
  (* the bound is monotone: higher thresholds allow shorter sequences *)
  match
    ( Cost.resembles_min_len ~k:8 ~threshold:0.95,
      Cost.resembles_min_len ~k:8 ~threshold:0.9 )
  with
  | Some hi, Some lo -> check Alcotest.bool "monotone in threshold" true (hi <= lo)
  | _ -> Alcotest.fail "both thresholds should be usable"

(* ---- genomic access paths: seed/contains/range equivalence ------------- *)

(* 30 chars, pure ACGT, above the k=8 t=0.9 minimum length of 18 *)
let pattern30 = "ACGTTGCAGGATCCATTACGGATCAGGTCA"

let genomic_fixture () =
  let rng = Genalg_synth.Rng.make 77 in
  let db = mk_db () in
  ignore (run db "CREATE TABLE frags (id int, seq dna)");
  for i = 1 to 200 do
    let s = Genalg_synth.Seqgen.dna_string rng 150 in
    let s = if i mod 10 = 0 then pattern30 ^ s else s in
    ignore (run db (Printf.sprintf "INSERT INTO frags VALUES (%d, dna('%s'))" i s))
  done;
  ignore (run db "CREATE GENOMIC INDEX ON frags (seq)");
  db

let test_seed_path_equivalence () =
  let db = genomic_fixture () in
  let q =
    Printf.sprintf "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= 0.9"
      pattern30
  in
  let heuristic, hplan =
    with_mode Plan.Heuristic (fun () -> (sorted_rows db q, explain_text db q))
  in
  check Alcotest.bool "heuristic plan scans" true (contains hplan "full scan");
  ignore (run db "ANALYZE frags");
  let cplan = explain_text db q in
  (* the acceptance bar: a query whose chosen plan differs between the
     planners, visible in EXPLAIN *)
  check Alcotest.bool "cost-based plan takes the seed path" true
    (contains cplan "genomic seed seq");
  check Alcotest.bool "plan carries an estimate" true (contains cplan "est~");
  let cost = sorted_rows db q in
  check Alcotest.bool "seed path = scan path (identical result sets)" true
    (heuristic = cost);
  check Alcotest.int "all 20 planted rows found" 20 (List.length (snd cost))

let test_seed_path_below_threshold_stays_scan () =
  (* t = 0.8 is below the k=8 usable bound: the seed path would be
     lossy, so the planner must NOT pick it even with statistics *)
  let db = genomic_fixture () in
  ignore (run db "ANALYZE frags");
  let q =
    Printf.sprintf "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= 0.8"
      pattern30
  in
  let cplan = explain_text db q in
  check Alcotest.bool "unsafe threshold keeps scanning" false
    (contains cplan "genomic seed")

let test_contains_path_with_stats () =
  let db = genomic_fixture () in
  let q =
    Printf.sprintf "SELECT id FROM frags WHERE contains(seq, '%s')" pattern30
  in
  let heuristic = with_mode Plan.Heuristic (fun () -> sorted_rows db q) in
  ignore (run db "ANALYZE frags");
  let cplan = explain_text db q in
  check Alcotest.bool "cost-based keeps the k-mer contains path" true
    (contains cplan "genomic index seq");
  check Alcotest.bool "contains path = scan path" true
    (heuristic = sorted_rows db q)

let test_genomic_index_survives_save_load () =
  (* genomic indexes persist as (column, k) specs in v3 images and are
     rebuilt when the adapter attaches — a fresh process must keep the
     seed path without re-issuing CREATE GENOMIC INDEX *)
  let db = genomic_fixture () in
  ignore (run db "ANALYZE frags");
  let q =
    Printf.sprintf "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= 0.9"
      pattern30
  in
  let before = sorted_rows db q in
  let path = Filename.temp_file "genalg_opt" ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match Db.save db path with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      let db2 =
        match Db.load path with Ok d -> d | Error m -> Alcotest.fail m
      in
      let t2 = Option.get (Db.find_table db2 ~space:Db.Public "frags") in
      check Alcotest.bool "index absent before attach (no registry)" false
        (Table.has_genomic_index t2 ~column:"seq");
      Genalg_adapter.Adapter.attach db2 Genalg_core.Builtin.default;
      check Alcotest.bool "attach rebuilds the genomic index" true
        (Table.has_genomic_index t2 ~column:"seq");
      check (Alcotest.option Alcotest.int) "k survives the round-trip"
        (Some 8) (Table.genomic_k t2 ~column:"seq");
      check Alcotest.bool "reloaded plan keeps the seed path" true
        (contains (explain_text db2 q) "genomic seed seq");
      check Alcotest.bool "reloaded results identical" true
        (before = sorted_rows db2 q);
      (* clone goes through the same serializer: specs carry, attach
         materializes them (the serve layer re-attaches per snapshot) *)
      let db3 = Db.clone db in
      Genalg_adapter.Adapter.attach db3 Genalg_core.Builtin.default;
      check Alcotest.bool "clone + attach keeps the seed path" true
        (contains (explain_text db3 q) "genomic seed seq"))

let nums_fixture n =
  let db = mk_db () in
  ignore (run db "CREATE TABLE nums (id int, v int)");
  for i = 1 to n do
    ignore (run db (Printf.sprintf "INSERT INTO nums VALUES (%d, %d)" i (i mod 7)))
  done;
  ignore (run db "CREATE INDEX ON nums (id)");
  db

let test_range_path_with_stats () =
  let db = nums_fixture 400 in
  let q = "SELECT v FROM nums WHERE id < 37" in
  let heuristic = with_mode Plan.Heuristic (fun () -> sorted_rows db q) in
  ignore (run db "ANALYZE nums");
  let cplan = explain_text db q in
  check Alcotest.bool "cost-based keeps the selective range index" true
    (contains cplan "index id in");
  check Alcotest.bool "plan carries an estimate" true (contains cplan "est~");
  check Alcotest.bool "index path = scan path" true
    (heuristic = sorted_rows db q)

(* ---- join reordering ---------------------------------------------------- *)

let test_join_reorder_smallest_first () =
  let db = mk_db () in
  ignore (run db "CREATE TABLE big (k int, v int)");
  ignore (run db "CREATE TABLE small (k int, w int)");
  for i = 1 to 300 do
    ignore (run db (Printf.sprintf "INSERT INTO big VALUES (%d, %d)" (i mod 50) i))
  done;
  for i = 1 to 10 do
    ignore (run db (Printf.sprintf "INSERT INTO small VALUES (%d, %d)" i i))
  done;
  let q = "SELECT * FROM big, small WHERE big.k = small.k" in
  let (hcols, hrows), hplan =
    with_mode Plan.Heuristic (fun () -> (sorted_rows db q, explain_text db q))
  in
  check Alcotest.bool "heuristic scans big first" true
    (String.length hplan > 0
    &&
    match String.index_opt hplan '\n' with
    | Some i -> contains (String.sub hplan 0 i) "scan big"
    | None -> false);
  ignore (run db "ANALYZE big");
  ignore (run db "ANALYZE small");
  let cplan = explain_text db q in
  check Alcotest.bool "cost-based scans small first" true
    (match String.index_opt cplan '\n' with
    | Some i -> contains (String.sub cplan 0 i) "scan small"
    | None -> false);
  let ccols, crows = sorted_rows db q in
  (* reordering must not leak into the output: SELECT * keeps the
     written FROM order for both column names and value order *)
  check (Alcotest.list Alcotest.string) "column order preserved" hcols ccols;
  check Alcotest.bool "identical result sets" true (hrows = crows);
  check Alcotest.bool "rows actually joined" true (List.length crows > 0)

(* ---- EXPLAIN ANALYZE: estimates vs actuals ------------------------------ *)

let test_explain_analyze_estimates () =
  let db = nums_fixture 200 in
  ignore (run db "ANALYZE nums");
  let txt = explain_analyze_text db "SELECT id FROM nums WHERE v = 3" in
  let scan_line =
    List.find_opt
      (fun l -> contains l "Scan nums")
      (String.split_on_char '\n' txt)
  in
  (match scan_line with
  | Some l ->
      check Alcotest.bool "scan shows actual rows" true (contains l "rows=");
      check Alcotest.bool "scan shows the planner estimate" true
        (contains l "est~")
  | None -> Alcotest.fail "expected a Scan operator line");
  (* heuristic plans carry no estimates *)
  let htxt =
    with_mode Plan.Heuristic (fun () ->
        explain_analyze_text db "SELECT id FROM nums WHERE v = 3")
  in
  check Alcotest.bool "no estimates on heuristic plans" false
    (contains htxt "est~")

(* ---- stale statistics --------------------------------------------------- *)

(* first "est~<n>" value in an EXPLAIN rendering *)
let first_estimate txt =
  let tag = "est~" in
  let nt = String.length txt and ntag = String.length tag in
  let rec find i =
    if i + ntag > nt then None
    else if String.sub txt i ntag = tag then Some (i + ntag)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while !j < nt && txt.[!j] >= '0' && txt.[!j] <= '9' do incr j done;
      if !j = i then None else Some (int_of_string (String.sub txt i (!j - i)))

let test_stale_stats_correct_and_refreshable () =
  let db = nums_fixture 100 in
  ignore (run db "ANALYZE nums");
  check Alcotest.bool "fresh stats estimate 100" true
    (contains (explain_text db "SELECT id FROM nums") "est~100");
  for i = 101 to 300 do
    ignore (run db (Printf.sprintf "INSERT INTO nums VALUES (%d, %d)" i (i mod 7)))
  done;
  (* the ANALYZE histogram still ends at id = 100, so the planner thinks
     this predicate is empty — but results must stay exact *)
  let q = "SELECT id FROM nums WHERE id > 100" in
  check Alcotest.int "all 200 new rows despite stale stats" 200
    (List.length (snd (sorted_rows db q)));
  let heuristic = with_mode Plan.Heuristic (fun () -> sorted_rows db q) in
  check Alcotest.bool "stale stats never change answers" true
    (heuristic = sorted_rows db q);
  (match first_estimate (explain_text db q) with
  | Some e ->
      check Alcotest.bool
        (Printf.sprintf "stale histogram underestimates (est~%d)" e)
        true (e <= 5)
  | None -> Alcotest.fail "expected an estimate on the analyzed scan");
  (* only ANALYZE runs between the two EXPLAINs, so an estimate change
     proves re-ANALYZE invalidated the cached plan and refreshed stats *)
  ignore (run db "ANALYZE nums");
  match first_estimate (explain_text db q) with
  | Some e ->
      check Alcotest.bool
        (Printf.sprintf "re-ANALYZE refreshes the estimate (est~%d)" e)
        true
        (e >= 150 && e <= 250)
  | None -> Alcotest.fail "expected an estimate after re-ANALYZE"

(* ---- the plan-equivalence property -------------------------------------- *)

let equivalence_queries =
  [
    "SELECT v FROM r WHERE k = 7";
    "SELECT v FROM r WHERE k < 11 AND v > 2";
    "SELECT r.v, s.w FROM r, s WHERE r.k = s.k";
    "SELECT count(*) FROM r WHERE k >= 5";
    "SELECT v FROM r ORDER BY v DESC LIMIT 5";
  ]

let plan_equivalence_property =
  let module Q = QCheck2 in
  let gen =
    Q.Gen.(
      pair
        (list_size (int_bound 30) (int_bound 20))
        (list_size (int_bound 12) (int_bound 20)))
  in
  let prop (ls, rs) =
    let db = mk_db () in
    ignore (run db "CREATE TABLE r (k int, v int)");
    ignore (run db "CREATE INDEX ON r (k)");
    ignore (run db "CREATE TABLE s (k int, w int)");
    List.iteri
      (fun i k -> ignore (run db (Printf.sprintf "INSERT INTO r VALUES (%d, %d)" k i)))
      ls;
    List.iteri
      (fun i k -> ignore (run db (Printf.sprintf "INSERT INTO s VALUES (%d, %d)" k i)))
      rs;
    let snap () = List.map (sorted_rows db) equivalence_queries in
    let heuristic = with_mode Plan.Heuristic snap in
    ignore (run db "ANALYZE r");
    ignore (run db "ANALYZE s");
    let cost = snap () in
    let prev = Par.jobs () in
    let cost_par =
      Par.set_jobs 4;
      Fun.protect ~finally:(fun () -> Par.set_jobs prev) snap
    in
    heuristic = cost && cost = cost_par
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"cost-based = heuristic result sets (random tables, any jobs)" gen
       prop)

let suites =
  [
    ( "optimizer.histogram",
      [
        tc "equi-depth over uniform data" `Quick test_histogram_equi_depth;
        tc "heavy duplicates" `Quick test_histogram_heavy_duplicates;
      ] );
    ( "optimizer.estimator",
      [
        tc "bounded error" `Quick test_estimator_bounded_error;
        tc "resembles bound constants" `Quick test_resembles_bound_constants;
      ] );
    ( "optimizer.access_paths",
      [
        tc "resembles seed = scan" `Quick test_seed_path_equivalence;
        tc "unsafe threshold stays scan" `Quick
          test_seed_path_below_threshold_stays_scan;
        tc "contains path with stats" `Quick test_contains_path_with_stats;
        tc "range index with stats" `Quick test_range_path_with_stats;
        tc "genomic index survives save/load" `Quick
          test_genomic_index_survives_save_load;
      ] );
    ( "optimizer.joins",
      [ tc "reorder smallest first" `Quick test_join_reorder_smallest_first ] );
    ( "optimizer.explain",
      [ tc "estimates vs actuals" `Quick test_explain_analyze_estimates ] );
    ( "optimizer.stale_stats",
      [ tc "correct and refreshable" `Quick test_stale_stats_correct_and_refreshable ] );
    ("optimizer.equivalence", [ plan_equivalence_property ]);
  ]
