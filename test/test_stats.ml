(* Tests for ANALYZE statistics and stats-driven predicate ordering
   (section 6.5: "information about the selectivity of genomic
   predicates ... and cost estimation of access plans"). *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Plan = Genalg_sqlx.Plan
module Exec = Genalg_sqlx.Exec
module Ast = Genalg_sqlx.Ast

let check = Alcotest.check
let tc = Alcotest.test_case

let fixture () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error m -> Alcotest.failf "fixture %s: %s" sql m
  in
  ignore (run "CREATE TABLE t (grp string, uniq int, maybe string)");
  for i = 1 to 100 do
    ignore
      (run
         (Printf.sprintf "INSERT INTO t VALUES ('g%d', %d, %s)" (i mod 4) i
            (if i mod 10 = 0 then "NULL" else "'x'")))
  done;
  (db, run)

let test_table_analyze () =
  let db, _ = fixture () in
  let t = Option.get (Db.find_table db ~space:Db.Public "t") in
  check Alcotest.bool "no stats before analyze" true
    (Table.column_stats t ~column:"grp" = None);
  Table.analyze t;
  (match Table.column_stats t ~column:"grp" with
  | Some { Table.rows; distinct; nulls; _ } ->
      check Alcotest.int "rows" 100 rows;
      check Alcotest.int "4 groups" 4 distinct;
      check Alcotest.int "no nulls" 0 nulls
  | None -> Alcotest.fail "grp stats missing");
  (match Table.column_stats t ~column:"uniq" with
  | Some { Table.distinct; _ } -> check Alcotest.int "100 distinct" 100 distinct
  | None -> Alcotest.fail "uniq stats missing");
  match Table.column_stats t ~column:"maybe" with
  | Some { Table.distinct; nulls; _ } ->
      check Alcotest.int "one non-null value" 1 distinct;
      check Alcotest.int "10 nulls" 10 nulls
  | None -> Alcotest.fail "maybe stats missing"

let test_analyze_statement () =
  let db, run = fixture () in
  (match Genalg_sqlx.Parser.parse "ANALYZE t" with
  | Ok (Ast.Analyze "t") -> ()
  | _ -> Alcotest.fail "parse ANALYZE");
  (match run "ANALYZE t" with
  | Exec.Executed -> ()
  | _ -> Alcotest.fail "ANALYZE should execute");
  let t = Option.get (Db.find_table db ~space:Db.Public "t") in
  check Alcotest.bool "stats collected" true (Table.column_stats t ~column:"grp" <> None);
  check Alcotest.bool "unknown table errors" true
    (Result.is_error (Exec.query db ~actor:"u" "ANALYZE nope"))

let catalog_of db =
  {
    Plan.has_index = (fun ~table:_ ~column:_ -> false);
    has_genomic_index = (fun ~table:_ ~column:_ -> false);
    column_exists =
      (fun ~table ~column ->
        match Db.resolve db ~actor:"u" table with
        | Some (_, t) ->
            Genalg_storage.Schema.column_index (Table.schema t) column <> None
        | None -> false);
    equality_selectivity =
      (fun ~table ~column ->
        match Db.resolve db ~actor:"u" table with
        | Some (_, t) -> (
            match Table.column_stats t ~column with
            | Some { Table.distinct; _ } when distinct > 0 ->
                Some (1. /. float_of_int distinct)
            | _ -> None)
        | None -> None);
    column_dtype = (fun ~table:_ ~column:_ -> None);
  }

let test_stats_driven_ordering () =
  let db, run = fixture () in
  let expr s = Result.get_ok (Genalg_sqlx.Parser.parse_expr s) in
  let catalog = catalog_of db in
  let rank e = Plan.rank_with catalog ~table:"t" ~alias:"t" (expr e) in
  (* without stats both equalities use the static default: equal rank *)
  check Alcotest.bool "no stats: tie" true (rank "grp = 'g1'" = rank "uniq = 42");
  ignore (run "ANALYZE t");
  (* with stats: uniq (1/100) is far more selective than grp (1/4) *)
  check Alcotest.bool "stats: unique key ranks first" true
    (rank "uniq = 42" < rank "grp = 'g1'");
  (* and the plan orders them accordingly *)
  let select =
    match Genalg_sqlx.Parser.parse "SELECT * FROM t WHERE grp = 'g1' AND uniq = 42" with
    | Ok (Ast.Select s) -> s
    | _ -> Alcotest.fail "parse"
  in
  let plan = Plan.make catalog select in
  match (List.hd plan.Plan.tables).Plan.filters with
  | [ first; _ ] ->
      check Alcotest.string "uniq predicate evaluated first" "(uniq = 42)"
        (Ast.expr_to_string first)
  | _ -> Alcotest.fail "expected two residual filters"

let test_stats_do_not_change_results () =
  let db, run = fixture () in
  let q = "SELECT count(*) FROM t WHERE grp = 'g1' AND uniq < 50" in
  let before = Exec.query db ~actor:"u" q in
  ignore (run "ANALYZE t");
  let after = Exec.query db ~actor:"u" q in
  check Alcotest.bool "same answer" true (before = after)

let suites =
  [
    ( "stats",
      [
        tc "table analyze" `Quick test_table_analyze;
        tc "ANALYZE statement" `Quick test_analyze_statement;
        tc "stats-driven ordering" `Quick test_stats_driven_ordering;
        tc "results unchanged" `Quick test_stats_do_not_change_results;
      ] );
  ]
