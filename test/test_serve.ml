(* The serving layer: wire-protocol codec roundtrips, WAL append/flush/
   replay (including torn tails and injected crashes at the group-commit
   points), and end-to-end concurrent sessions against a live server —
   snapshot isolation, first-committer-wins conflicts, rollback,
   admission control and dirty-shutdown recovery. See docs/SERVING.md. *)

module Db = Genalg_storage.Database
module Dtype = Genalg_storage.Dtype
module Wal = Genalg_storage.Wal
module Exec = Genalg_sqlx.Exec
module Fault = Genalg_fault.Fault
module Obs = Genalg_obs.Obs
module Protocol = Genalg_serve.Protocol
module Server = Genalg_serve.Server
module Client = Genalg_serve.Client

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ok = function Ok v -> v | Error m -> Alcotest.fail m

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ---- protocol codec ---------------------------------------------------- *)

let all_requests =
  Protocol.
    [
      Hello { actor = "biologist"; client_version = 1 };
      Hello { actor = "etl"; client_version = 2 };
      Query { sql = "SELECT * FROM sequences WHERE contains(seq, 'ACGT')" };
      Begin;
      Commit;
      Rollback;
      Stats;
      Ping;
      Goodbye;
      Shutdown { dirty = false };
      Shutdown { dirty = true };
    ]

let all_replies =
  Protocol.
    [
      Welcome { session = 7; server_version = 1; topology = "" };
      Welcome { session = 3; server_version = 2; topology = "standalone" };
      Welcome { session = 4; server_version = 2; topology = "shard 1/4" };
      Ok_reply { info = "txn started" };
      Rows
        {
          columns = [ "accession"; "length"; "score" ];
          rows =
            [
              [| Dtype.Str "AC0001"; Dtype.Int 512; Dtype.Float 0.75 |];
              [| Dtype.Str "AC0002"; Dtype.Null; Dtype.Bool true |];
            ];
        };
      Affected 42;
      Error_reply { code = PROTO; message = "bad tag" };
      Error_reply { code = ADMISSION; message = "server full" };
      Error_reply { code = QUERY; message = "no such table" };
      Error_reply { code = TXN_STATE; message = "no transaction" };
      Error_reply { code = CONFLICT; message = "first committer won" };
      Error_reply { code = LIMIT; message = "row cap" };
      Error_reply { code = SHUTDOWN; message = "draining" };
      Error_reply { code = VERSION; message = "unsupported protocol version 9" };
      Pong;
      Stats_text "serve.queries 12";
      Bye;
    ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' -> checkb "request roundtrips" true (r = r')
      | Error m -> Alcotest.fail m)
    all_requests

let test_reply_roundtrip () =
  List.iter
    (fun r ->
      match Protocol.decode_reply (Protocol.encode_reply r) with
      | Ok r' -> checkb "reply roundtrips" true (r = r')
      | Error m -> Alcotest.fail m)
    all_replies

let test_decode_rejects_garbage () =
  checkb "empty request" true (Result.is_error (Protocol.decode_request ""));
  checkb "unknown request tag" true
    (Result.is_error (Protocol.decode_request "~"));
  checkb "truncated hello" true
    (Result.is_error (Protocol.decode_request "H\001\002"));
  checkb "trailing bytes" true
    (Result.is_error
       (Protocol.decode_request (Protocol.encode_request Protocol.Ping ^ "x")));
  checkb "empty reply" true (Result.is_error (Protocol.decode_reply ""));
  checkb "unknown error code" true
    (Result.is_error
       (Protocol.decode_reply
          "E\255\255\255\255\255\255\255\255\000\000\000\000\000\000\000\000"))

let test_framing_incremental () =
  let payloads = [ "alpha"; ""; String.make 1000 'x' ] in
  let stream =
    String.concat ""
      (List.map
         (fun p ->
           let n = String.length p in
           let hdr = Bytes.create 4 in
           Bytes.set_uint8 hdr 0 (n lsr 24 land 0xff);
           Bytes.set_uint8 hdr 1 (n lsr 16 land 0xff);
           Bytes.set_uint8 hdr 2 (n lsr 8 land 0xff);
           Bytes.set_uint8 hdr 3 (n land 0xff);
           Bytes.to_string hdr ^ p)
         payloads)
  in
  (* feed the whole stream one byte at a time; frames must pop out in
     order, exactly once each *)
  let f = Protocol.Framing.create () in
  let out = ref [] in
  String.iter
    (fun ch ->
      Protocol.Framing.feed f (Bytes.make 1 ch) 1;
      let rec drain () =
        match Protocol.Framing.next f with
        | Ok (Some frame) ->
            out := frame :: !out;
            drain ()
        | Ok None -> ()
        | Error m -> Alcotest.fail m
      in
      drain ())
    stream;
  checkb "frames in order" true (List.rev !out = payloads);
  checkb "no residual frame" true (Protocol.Framing.next f = Ok None)

(* ---- WAL --------------------------------------------------------------- *)

let with_wal f =
  let path = Filename.temp_file "genalg_wal" ".wal" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_wal_roundtrip () =
  with_wal (fun path ->
      Sys.remove path;
      let w = ok (Wal.open_ path) in
      Wal.append_begin w ~txn:1;
      Wal.append_stmt w ~txn:1 ~actor:"a" ~sql:"INSERT INTO t VALUES (1)";
      Wal.append_stmt w ~txn:1 ~actor:"a" ~sql:"INSERT INTO t VALUES (2)";
      Wal.append_commit w ~txn:1;
      Wal.append_begin w ~txn:2;
      Wal.append_stmt w ~txn:2 ~actor:"b" ~sql:"DELETE FROM t WHERE k = 1";
      Wal.append_commit w ~txn:2;
      Wal.append_begin w ~txn:3;
      Wal.append_stmt w ~txn:3 ~actor:"c" ~sql:"INSERT INTO t VALUES (9)";
      (* txn 3 never commits *)
      ok (Wal.flush w);
      Wal.close w;
      let rp = ok (Wal.replay path) in
      checki "committed stmts" 3 (List.length rp.Wal.committed);
      checkb "not torn" false rp.Wal.torn;
      checkb "open txn discarded" true (rp.Wal.discarded > 0);
      let sqls = List.map (fun s -> s.Wal.rp_sql) rp.Wal.committed in
      checkb "commit order preserved" true
        (sqls
        = [
            "INSERT INTO t VALUES (1)";
            "INSERT INTO t VALUES (2)";
            "DELETE FROM t WHERE k = 1";
          ]);
      let actors = List.map (fun s -> s.Wal.rp_actor) rp.Wal.committed in
      checkb "actors preserved" true (actors = [ "a"; "a"; "b" ]))

let test_wal_torn_tail () =
  with_wal (fun path ->
      Sys.remove path;
      let w = ok (Wal.open_ path) in
      Wal.append_begin w ~txn:1;
      Wal.append_stmt w ~txn:1 ~actor:"a" ~sql:"INSERT INTO t VALUES (1)";
      Wal.append_commit w ~txn:1;
      ok (Wal.flush w);
      Wal.close w;
      (* simulate a torn append: garbage where the next record should be *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o600 path in
      output_string oc "\042\000\000\000\000\000\000\000partial";
      close_out oc;
      let rp = ok (Wal.replay path) in
      checkb "torn tail detected" true rp.Wal.torn;
      checki "prefix survives" 1 (List.length rp.Wal.committed))

let test_wal_truncate () =
  with_wal (fun path ->
      Sys.remove path;
      let w = ok (Wal.open_ path) in
      Wal.append_begin w ~txn:1;
      Wal.append_stmt w ~txn:1 ~actor:"a" ~sql:"INSERT INTO t VALUES (1)";
      Wal.append_commit w ~txn:1;
      ok (Wal.flush w);
      ok (Wal.truncate w);
      Wal.close w;
      let rp = ok (Wal.replay path) in
      checki "truncated wal is empty" 0 (List.length rp.Wal.committed);
      checkb "not torn" false rp.Wal.torn)

(* Crash at each registered WAL point while flushing a second
   transaction; the first (flushed and acknowledged) transaction must
   replay in full, always. *)
let test_wal_crash_matrix () =
  checkb "wal crash points registered" true (Wal.crash_points <> []);
  List.iter
    (fun site ->
      with_wal (fun path ->
          Sys.remove path;
          let w = ok (Wal.open_ path) in
          Wal.append_begin w ~txn:1;
          Wal.append_stmt w ~txn:1 ~actor:"a" ~sql:"INSERT INTO t VALUES (1)";
          Wal.append_commit w ~txn:1;
          ok (Wal.flush w);
          Wal.append_begin w ~txn:2;
          Wal.append_stmt w ~txn:2 ~actor:"a" ~sql:"INSERT INTO t VALUES (2)";
          Wal.append_commit w ~txn:2;
          (match Fault.configure (site ^ ":crash:times=1") with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          (match Wal.flush w with
          | exception Fault.Crash_point s ->
              checks (site ^ " crashes at itself") site s
          | Ok () | Error _ -> Alcotest.fail (site ^ ": crash did not fire"));
          Fault.disable ();
          Wal.close w;
          let rp = ok (Wal.replay path) in
          let sqls = List.map (fun s -> s.Wal.rp_sql) rp.Wal.committed in
          checkb (site ^ ": acked txn survives") true
            (List.mem "INSERT INTO t VALUES (1)" sqls)))
    Wal.crash_points

(* ---- end-to-end sessions ----------------------------------------------- *)

let with_server ?(tweak = fun c -> c) f =
  let dir = Filename.temp_file "genalg_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let db_path = Filename.concat dir "s.db" in
  let socket = Filename.concat dir "s.sock" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      Array.iter
        (fun file ->
          try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () ->
      let db = Db.create () in
      ignore (ok (Exec.query db ~actor:"u" "CREATE TABLE t (k int)"));
      ignore (ok (Exec.query db ~actor:"u" "INSERT INTO t VALUES (1)"));
      ok (Db.save db db_path);
      let config =
        tweak
          {
            (Server.default_config ~socket_path:socket) with
            Server.metrics = false;
          }
      in
      let server = ok (Server.create config ~db_path) in
      let dom = Domain.spawn (fun () -> Server.serve server) in
      let rec wait_ready n =
        if n = 0 then Alcotest.fail "server did not come up"
        else
          match Client.connect ~actor:"probe" ~socket () with
          | Ok c -> Client.close c
          | Error _ ->
              Unix.sleepf 0.02;
              wait_ready (n - 1)
      in
      wait_ready 200;
      let r = f ~socket ~db_path ~server in
      Server.stop server;
      (match Domain.join dom with Ok () -> () | Error _ -> ());
      r)

let count c table =
  match Client.query c (Printf.sprintf "SELECT k FROM %s" table) with
  | Ok (Protocol.Rows { rows; _ }) -> List.length rows
  | Ok (Protocol.Error_reply { message; _ }) -> Alcotest.fail message
  | Ok _ -> Alcotest.fail "unexpected reply"
  | Error m -> Alcotest.fail m

let test_snapshot_isolation () =
  with_server (fun ~socket ~db_path:_ ~server:_ ->
      (* both clients share one actor so they see the same user space *)
      let c1 = ok (Client.connect ~actor:"u" ~socket ()) in
      let c2 = ok (Client.connect ~actor:"u" ~socket ()) in
      ok (Client.begin_ c1);
      checki "snapshot sees initial rows" 1 (count c1 "t");
      (match Client.query c2 "INSERT INTO t VALUES (2)" with
      | Ok (Protocol.Affected 1) -> ()
      | _ -> Alcotest.fail "autocommit insert failed");
      checki "live db moved on" 2 (count c2 "t");
      checki "snapshot still sees BEGIN state" 1 (count c1 "t");
      ok (Client.commit c1);
      checki "after read-only commit, reads follow live db" 2 (count c1 "t");
      Client.close c1;
      Client.close c2)

let test_txn_read_your_writes () =
  with_server (fun ~socket ~db_path:_ ~server:_ ->
      let c1 = ok (Client.connect ~actor:"u" ~socket ()) in
      let c2 = ok (Client.connect ~actor:"u" ~socket ()) in
      ok (Client.begin_ c1);
      (match Client.query c1 "INSERT INTO t VALUES (10)" with
      | Ok (Protocol.Affected 1) -> ()
      | _ -> Alcotest.fail "txn insert failed");
      checki "read-your-writes inside txn" 2 (count c1 "t");
      checki "uncommitted write invisible to others" 1 (count c2 "t");
      ok (Client.commit c1);
      checki "commit published the write" 2 (count c2 "t");
      Client.close c1;
      Client.close c2)

let test_write_write_conflict () =
  with_server (fun ~socket ~db_path:_ ~server:_ ->
      let c1 = ok (Client.connect ~actor:"u" ~socket ()) in
      let c2 = ok (Client.connect ~actor:"u" ~socket ()) in
      ok (Client.begin_ c1);
      ok (Client.begin_ c2);
      (match Client.query c1 "INSERT INTO t VALUES (100)" with
      | Ok (Protocol.Affected 1) -> ()
      | _ -> Alcotest.fail "c1 insert failed");
      (match Client.query c2 "INSERT INTO t VALUES (200)" with
      | Ok (Protocol.Affected 1) -> ()
      | _ -> Alcotest.fail "c2 insert failed");
      ok (Client.commit c1);
      (match Client.commit c2 with
      | Ok () -> Alcotest.fail "second committer must lose"
      | Error m ->
          checkb "refusal names the conflict" true
            (contains (String.uppercase_ascii m) "CONFLICT"));
      checki "only the winner's row landed" 2 (count c1 "t");
      Client.close c1;
      Client.close c2)

let test_rollback_discards () =
  with_server (fun ~socket ~db_path:_ ~server:_ ->
      let c = ok (Client.connect ~actor:"u" ~socket ()) in
      ok (Client.begin_ c);
      (match Client.query c "INSERT INTO t VALUES (7)" with
      | Ok (Protocol.Affected 1) -> ()
      | _ -> Alcotest.fail "insert failed");
      checki "write visible inside txn" 2 (count c "t");
      ok (Client.rollback c);
      checki "rollback discarded the write" 1 (count c "t");
      Client.close c)

let test_txn_state_errors () =
  with_server (fun ~socket ~db_path:_ ~server:_ ->
      let c = ok (Client.connect ~actor:"u" ~socket ()) in
      checkb "commit without begin refused" true
        (Result.is_error (Client.commit c));
      checkb "rollback without begin refused" true
        (Result.is_error (Client.rollback c));
      ok (Client.begin_ c);
      checkb "nested begin refused" true (Result.is_error (Client.begin_ c));
      ok (Client.rollback c);
      Client.close c)

let test_admission_and_limits () =
  with_server
    ~tweak:(fun c -> { c with Server.max_sessions = 1; Server.max_rows = 3 })
    (fun ~socket ~db_path:_ ~server:_ ->
      let c1 = ok (Client.connect ~actor:"u" ~socket ()) in
      (match Client.connect ~actor:"u" ~socket () with
      | Ok c2 ->
          Client.close c2;
          Alcotest.fail "second session must be refused"
      | Error _ -> ());
      for k = 2 to 6 do
        match
          Client.query c1 (Printf.sprintf "INSERT INTO t VALUES (%d)" k)
        with
        | Ok (Protocol.Affected 1) -> ()
        | _ -> Alcotest.fail "insert failed"
      done;
      (match Client.query c1 "SELECT k FROM t" with
      | Ok (Protocol.Error_reply { code = Protocol.LIMIT; _ }) -> ()
      | _ -> Alcotest.fail "over-limit result must be refused with LIMIT");
      (match Client.query c1 "SELECT k FROM t LIMIT 2" with
      | Ok (Protocol.Rows { rows; _ }) -> checki "under limit" 2 (List.length rows)
      | _ -> Alcotest.fail "bounded query must pass");
      Client.close c1)

let test_ping_and_stats () =
  with_server
    ~tweak:(fun c -> { c with Server.metrics = true })
    (fun ~socket ~db_path:_ ~server:_ ->
      Fun.protect
        ~finally:(fun () -> Obs.set_enabled false)
        (fun () ->
          let c = ok (Client.connect ~actor:"u" ~socket ()) in
          ok (Client.ping c);
          ignore (count c "t");
          let page = ok (Client.stats c) in
          List.iter
            (fun needle ->
              checkb (needle ^ " on stats page") true (contains page needle))
            [ "serve.sessions.opened"; "serve.queries"; "sessions" ];
          Client.close c))

let test_dirty_shutdown_wal_replay () =
  with_server (fun ~socket ~db_path ~server:_ ->
      let committed = ref 0 in
      let c = ok (Client.connect ~actor:"u" ~socket ()) in
      (* a committed multi-statement txn and an autocommit write, all
         acked before the "crash" *)
      ok (Client.begin_ c);
      (match Client.query c "INSERT INTO t VALUES (21)" with
      | Ok (Protocol.Affected 1) -> incr committed
      | _ -> Alcotest.fail "txn insert failed");
      (match Client.query c "INSERT INTO t VALUES (23)" with
      | Ok (Protocol.Affected 1) -> incr committed
      | _ -> Alcotest.fail "txn insert failed");
      ok (Client.commit c);
      (match Client.query c "INSERT INTO t VALUES (22)" with
      | Ok (Protocol.Affected 1) -> incr committed
      | _ -> Alcotest.fail "autocommit insert failed");
      (* and one rolled-back write that must NOT reappear *)
      ok (Client.begin_ c);
      ignore (Client.query c "INSERT INTO t VALUES (666)");
      ok (Client.rollback c);
      (* dirty = skip the checkpoint: the image on disk predates every
         commit above, so reopening must replay them from the WAL *)
      (match Client.shutdown c ~dirty:true with Ok () | Error _ -> ());
      Client.close c;
      checkb "wal survives dirty shutdown" true
        (Sys.file_exists (Wal.wal_path db_path));
      let config =
        {
          (Server.default_config ~socket_path:(socket ^ "2")) with
          Server.metrics = false;
        }
      in
      let s2 = ok (Server.create config ~db_path) in
      checkb "replayed something" true (Server.replayed s2 > 0);
      (match Exec.query (Server.db s2) ~actor:"u" "SELECT k FROM t" with
      | Ok (Exec.Rows rs) ->
          let keys =
            List.filter_map
              (fun row ->
                match row with [| Dtype.Int k |] -> Some k | _ -> None)
              rs.Exec.rows
          in
          checki "all acked rows recovered" (1 + !committed)
            (List.length keys);
          checkb "committed rows present" true
            (List.mem 21 keys && List.mem 23 keys && List.mem 22 keys);
          checkb "rolled-back row absent" true (not (List.mem 666 keys))
      | _ -> Alcotest.fail "recovered db unreadable");
      (* a clean stop checkpoints: image saved, WAL truncated *)
      Server.stop s2;
      let d = Domain.spawn (fun () -> Server.serve s2) in
      (match Domain.join d with Ok () -> () | Error _ -> ());
      checkb "clean stop checkpointed (wal empty)" true
        ((ok (Wal.replay (Wal.wal_path db_path))).Wal.committed = []))

let test_concurrent_clients_interleave () =
  with_server (fun ~socket ~db_path:_ ~server:_ ->
      (* two domains, each its own session + table, interleaving txns *)
      let worker i () =
        match Client.connect ~actor:(Printf.sprintf "w%d" i) ~socket () with
        | Error m -> Error m
        | Ok c ->
            let ( let* ) = Result.bind in
            let q sql =
              match Client.query c sql with
              | Ok (Protocol.Error_reply { message; _ }) -> Error message
              | Ok _ -> Ok ()
              | Error m -> Error m
            in
            let r =
              let* () = q "CREATE TABLE own (k int)" in
              let rec loop k =
                if k > 10 then Ok ()
                else
                  let* () = Client.begin_ c in
                  let* () =
                    q (Printf.sprintf "INSERT INTO own VALUES (%d)" k)
                  in
                  let* () = Client.commit c in
                  loop (k + 1)
              in
              let* () = loop 1 in
              match Client.query c "SELECT k FROM own" with
              | Ok (Protocol.Rows { rows; _ }) -> Ok (List.length rows)
              | Ok _ -> Error "unexpected reply"
              | Error m -> Error m
            in
            Client.close c;
            r
      in
      let doms = List.init 4 (fun i -> Domain.spawn (worker i)) in
      List.iter
        (fun d ->
          match Domain.join d with
          | Ok n -> checki "every txn committed" 10 n
          | Error m -> Alcotest.fail m)
        doms)

let suites =
  [
    ( "serve protocol",
      [
        Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
        Alcotest.test_case "decode rejects garbage" `Quick
          test_decode_rejects_garbage;
        Alcotest.test_case "incremental framing" `Quick test_framing_incremental;
      ] );
    ( "serve wal",
      [
        Alcotest.test_case "append/flush/replay roundtrip" `Quick
          test_wal_roundtrip;
        Alcotest.test_case "torn tail tolerated" `Quick test_wal_torn_tail;
        Alcotest.test_case "truncate" `Quick test_wal_truncate;
        Alcotest.test_case "crash matrix keeps acked txns" `Quick
          test_wal_crash_matrix;
      ] );
    ( "serve sessions",
      [
        Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
        Alcotest.test_case "read-your-writes and publish on commit" `Quick
          test_txn_read_your_writes;
        Alcotest.test_case "first committer wins" `Quick
          test_write_write_conflict;
        Alcotest.test_case "rollback discards" `Quick test_rollback_discards;
        Alcotest.test_case "txn state errors" `Quick test_txn_state_errors;
        Alcotest.test_case "admission and row limit" `Quick
          test_admission_and_limits;
        Alcotest.test_case "ping and stats over the wire" `Quick
          test_ping_and_stats;
        Alcotest.test_case "dirty shutdown recovers via WAL" `Quick
          test_dirty_shutdown_wal_replay;
        Alcotest.test_case "four clients interleave txns" `Quick
          test_concurrent_clients_interleave;
      ] );
  ]
