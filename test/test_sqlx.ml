(* Unit tests for the extended query language (lib/sqlx). *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Schema = Genalg_storage.Schema
module Ast = Genalg_sqlx.Ast
module Parser = Genalg_sqlx.Parser
module Eval = Genalg_sqlx.Eval
module Plan = Genalg_sqlx.Plan
module Exec = Genalg_sqlx.Exec

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---- lexer/parser ------------------------------------------------------ *)

let test_parse_roundtrip () =
  (* parse |> print |> parse must be stable *)
  let stable input =
    match Parser.parse input with
    | Error msg -> Alcotest.failf "parse %s failed: %s" input msg
    | Ok stmt -> (
        let printed = Ast.stmt_to_string stmt in
        match Parser.parse printed with
        | Error msg -> Alcotest.failf "reparse %s failed: %s" printed msg
        | Ok stmt2 ->
            check Alcotest.string ("stable " ^ input) printed (Ast.stmt_to_string stmt2))
  in
  List.iter stable
    [
      "SELECT * FROM t";
      "SELECT a, b AS bee FROM t WHERE a = 1 AND b <> 'x'";
      "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2";
      "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 5";
      "SELECT t1.a, t2.b FROM t1, t2 x WHERE t1.a = x.b";
      "SELECT gc_content(seq) FROM sequences WHERE contains(seq, 'ATG')";
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')";
      "CREATE TABLE t (a int NOT NULL, b string, s dna)";
      "CREATE INDEX ON t (a)";
      "CREATE GENOMIC INDEX ON t (s)";
      "ANALYZE t";
      "DROP TABLE t";
      "DELETE FROM t WHERE a < 3";
      "SELECT a + b * 2 - -c FROM t WHERE NOT (a LIKE 'x%')";
    ]

let test_parse_errors () =
  List.iter
    (fun input ->
      check Alcotest.bool ("rejects " ^ input) true (Result.is_error (Parser.parse input)))
    [
      ""; "SELECT"; "SELECT FROM t"; "SELECT * FROM"; "SELECT * FROM t WHERE";
      "FROB x"; "SELECT * FROM t LIMIT 'x'"; "SELECT a FROM t GROUP";
      "INSERT INTO t VALUES"; "SELECT * FROM t extra garbage here (";
    ]

let test_string_escapes () =
  match Parser.parse "SELECT * FROM t WHERE a = 'it''s'" with
  | Ok (Ast.Select { where = Some (Ast.Binop (Ast.Eq, _, Ast.Lit (D.Str s))); _ }) ->
      check Alcotest.string "unescaped quote" "it's" s
  | _ -> Alcotest.fail "quoted string with escape failed"

(* ---- expression evaluation --------------------------------------------- *)

let eval_const input =
  match Parser.parse_expr input with
  | Error msg -> Alcotest.failf "parse_expr %s: %s" input msg
  | Ok e -> Eval.eval Eval.empty_env e

let test_eval_arithmetic () =
  check Alcotest.bool "1+2*3" true (eval_const "1 + 2 * 3" = Ok (D.Int 7));
  check Alcotest.bool "mixed float" true (eval_const "1 + 0.5" = Ok (D.Float 1.5));
  check Alcotest.bool "division by zero" true (Result.is_error (eval_const "1 / 0"));
  check Alcotest.bool "unary minus" true (eval_const "-(2 + 3)" = Ok (D.Int (-5)))

let test_eval_comparisons () =
  check Alcotest.bool "lt" true (eval_const "1 < 2" = Ok (D.Bool true));
  check Alcotest.bool "string eq" true (eval_const "'a' = 'a'" = Ok (D.Bool true));
  check Alcotest.bool "int/float compare" true (eval_const "2 = 2.0" = Ok (D.Bool true));
  check Alcotest.bool "null propagates" true (eval_const "NULL = 1" = Ok D.Null)

let test_eval_logic () =
  check Alcotest.bool "and" true (eval_const "TRUE AND FALSE" = Ok (D.Bool false));
  check Alcotest.bool "or short-circuit with null" true
    (eval_const "TRUE OR NULL" = Ok (D.Bool true));
  check Alcotest.bool "and with null" true (eval_const "TRUE AND NULL" = Ok D.Null);
  check Alcotest.bool "false and null = false" true
    (eval_const "FALSE AND NULL" = Ok (D.Bool false));
  check Alcotest.bool "not" true (eval_const "NOT FALSE" = Ok (D.Bool true))

let test_eval_like () =
  check Alcotest.bool "percent" true (eval_const "'hello' LIKE 'he%'" = Ok (D.Bool true));
  check Alcotest.bool "underscore" true (eval_const "'cat' LIKE 'c_t'" = Ok (D.Bool true));
  check Alcotest.bool "middle" true (eval_const "'abcdef' LIKE '%cd%'" = Ok (D.Bool true));
  check Alcotest.bool "no match" true (eval_const "'abc' LIKE 'x%'" = Ok (D.Bool false));
  check Alcotest.bool "exact" true (eval_const "'abc' LIKE 'abc'" = Ok (D.Bool true));
  check Alcotest.bool "empty pattern" true (eval_const "'a' LIKE ''" = Ok (D.Bool false))

let test_eval_builtins () =
  check Alcotest.bool "upper" true (eval_const "upper('abc')" = Ok (D.Str "ABC"));
  check Alcotest.bool "strlen" true (eval_const "strlen('abcd')" = Ok (D.Int 4));
  check Alcotest.bool "coalesce" true (eval_const "coalesce(NULL, 5)" = Ok (D.Int 5));
  check Alcotest.bool "substr" true (eval_const "substr('hello', 1, 3)" = Ok (D.Str "ell"));
  check Alcotest.bool "unknown fn" true (Result.is_error (eval_const "nope(1)"))

(* ---- planner -------------------------------------------------------------- *)

let catalog ?(genomic = []) ~indexed () =
  {
    Plan.has_index = (fun ~table:_ ~column -> List.mem column indexed);
    has_genomic_index = (fun ~table:_ ~column -> List.mem column genomic);
    column_exists = (fun ~table:_ ~column:_ -> true);
    equality_selectivity = (fun ~table:_ ~column:_ -> None);
    column_dtype = (fun ~table:_ ~column:_ -> None);
  }

let select_of input =
  match Parser.parse input with
  | Ok (Ast.Select s) -> s
  | _ -> Alcotest.fail ("not a select: " ^ input)

let test_plan_pushdown () =
  let s = select_of "SELECT * FROM a, b WHERE a.x = 1 AND b.y = 2 AND a.x = b.y" in
  let p = Plan.make (catalog ~indexed:[] ()) s in
  check Alcotest.int "two tables" 2 (List.length p.Plan.tables);
  check Alcotest.int "one join filter" 1 (List.length p.Plan.join_filters);
  List.iter
    (fun (tp : Plan.table_plan) ->
      check Alcotest.int ("one local filter on " ^ tp.Plan.table) 1
        (List.length tp.Plan.filters))
    p.Plan.tables

let test_plan_index_selection () =
  let s = select_of "SELECT * FROM t WHERE id = 42 AND name = 'x'" in
  let p = Plan.make (catalog ~indexed:[ "id" ] ()) s in
  match p.Plan.tables with
  | [ tp ] -> (
      (match tp.Plan.access with
      | Plan.Index_eq { column; key } ->
          check Alcotest.string "indexed column" "id" column;
          check Alcotest.bool "key" true (D.equal_value key (D.Int 42))
      | _ -> Alcotest.fail "expected an index access");
      check Alcotest.int "residual filter" 1 (List.length tp.Plan.filters))
  | _ -> Alcotest.fail "one table expected"

let test_plan_range_index () =
  let s = select_of "SELECT * FROM t WHERE id >= 10" in
  let p = Plan.make (catalog ~indexed:[ "id" ] ()) s in
  match (List.hd p.Plan.tables).Plan.access with
  | Plan.Index_range { lo = Some lo; hi = None; lo_inclusive = true; _ } ->
      check Alcotest.bool "lo bound" true (D.equal_value lo (D.Int 10))
  | _ -> Alcotest.fail "expected range access"

let test_plan_predicate_ordering () =
  (* the expensive resembles() must be ordered after the cheap equality *)
  let s =
    select_of
      "SELECT * FROM t WHERE resembles(seq, dna('ACGTACGT')) >= 0.8 AND organism = 'x'"
  in
  let p = Plan.make (catalog ~indexed:[] ()) s in
  (match (List.hd p.Plan.tables).Plan.filters with
  | [ first; second ] ->
      check Alcotest.bool "cheap predicate first" true
        (Plan.predicate_cost first < Plan.predicate_cost second)
  | _ -> Alcotest.fail "two filters expected");
  (* naive mode preserves source order *)
  let naive = Plan.make ~optimize:false (catalog ~indexed:[] ()) s in
  match (List.hd naive.Plan.tables).Plan.filters with
  | first :: _ ->
      check Alcotest.bool "naive keeps source order" true
        (Plan.predicate_cost first > 1000.)
  | _ -> Alcotest.fail "naive filters missing"

let test_selectivity_model () =
  let sel input =
    match Parser.parse_expr input with
    | Ok e -> Plan.predicate_selectivity e
    | Error msg -> Alcotest.fail msg
  in
  check Alcotest.bool "long motif is selective" true
    (sel "contains(seq, 'ATTGCCATA')" < 0.01);
  check Alcotest.bool "short motif is not" true (sel "contains(seq, 'AT')" > 0.5);
  check Alcotest.bool "equality default" true (sel "a = 1" = 0.05);
  check Alcotest.bool "conjunction multiplies" true (sel "a = 1 AND b = 2" < 0.01)

(* ---- executor ---------------------------------------------------------------- *)

let fixture_db () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error msg -> Alcotest.failf "fixture: %s (%s)" msg sql
  in
  ignore (run "CREATE TABLE frag (id int NOT NULL, organism string, seq dna, len int)");
  let insert id organism seq =
    ignore
      (run
         (Printf.sprintf "INSERT INTO frag VALUES (%d, '%s', dna('%s'), %d)" id organism
            seq (String.length seq)))
  in
  insert 1 "ecoli" "ATTGCCATAGGCC";
  insert 2 "ecoli" "ACGTACGTACGT";
  insert 3 "yeast" "GGGGCCCCATTGCCATA";
  insert 4 "yeast" "TTTTTTTT";
  insert 5 "human" "ATGAAATAGATTGCCATA";
  (db, run)

let rows_of = function
  | Exec.Rows rs -> rs
  | _ -> Alcotest.fail "expected rows"

let test_exec_select_where () =
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u" "SELECT id FROM frag WHERE organism = 'ecoli' ORDER BY id"))
  in
  check Alcotest.int "two rows" 2 (List.length rs.Exec.rows);
  check (Alcotest.list Alcotest.string) "columns" [ "id" ] rs.Exec.columns

let test_exec_udf_in_where () =
  (* the paper's flagship example: contains() inside WHERE *)
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT id FROM frag WHERE contains(seq, 'ATTGCCATA') ORDER BY id"))
  in
  let ids = List.map (fun r -> r.(0)) rs.Exec.rows in
  check Alcotest.bool "ids 1,3,5" true
    (List.map (function D.Int i -> i | _ -> -1) ids = [ 1; 3; 5 ])

let test_exec_udf_in_projection () =
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT id, gc_content(seq) AS gc FROM frag WHERE id = 4"))
  in
  match rs.Exec.rows with
  | [ [| _; D.Float gc |] ] -> check (Alcotest.float 1e-9) "gc of T8" 0. gc
  | _ -> Alcotest.fail "unexpected shape"

let test_exec_order_and_limit () =
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u" "SELECT id FROM frag ORDER BY len DESC LIMIT 2"))
  in
  check Alcotest.int "limit" 2 (List.length rs.Exec.rows);
  match rs.Exec.rows with
  | [ [| D.Int first |]; [| D.Int second |] ] ->
      check Alcotest.int "longest first" 5 first;
      check Alcotest.int "second longest" 3 second
  | _ -> Alcotest.fail "unexpected shape"

let test_exec_aggregates () =
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT organism, count(*) AS n, avg(len) AS mean FROM frag GROUP BY organism ORDER BY organism"))
  in
  check Alcotest.int "three groups" 3 (List.length rs.Exec.rows);
  (match rs.Exec.rows with
  | [| D.Str "ecoli"; D.Int 2; D.Float mean |] :: _ ->
      check (Alcotest.float 0.01) "ecoli mean" 12.5 mean
  | _ -> Alcotest.fail "ecoli group wrong");
  let total =
    rows_of (Result.get_ok (Exec.query db ~actor:"u" "SELECT count(*) FROM frag"))
  in
  check Alcotest.bool "count(*) = 5" true
    (match total.Exec.rows with [ [| D.Int 5 |] ] -> true | _ -> false)

let test_exec_having () =
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT organism FROM frag GROUP BY organism HAVING count(*) > 1 ORDER BY organism"))
  in
  check Alcotest.int "two multi-row organisms" 2 (List.length rs.Exec.rows)

let test_exec_join () =
  let db, run = fixture_db () in
  ignore (run "CREATE TABLE tax (organism string, kingdom string)");
  ignore
    (run
       "INSERT INTO tax VALUES ('ecoli', 'bacteria'), ('yeast', 'fungi'), ('human', 'animalia')");
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT f.id, t.kingdom FROM frag f, tax t WHERE f.organism = t.organism AND t.kingdom = 'fungi' ORDER BY f.id"))
  in
  check Alcotest.int "yeast rows" 2 (List.length rs.Exec.rows)

let test_exec_index_equivalence () =
  let db, run = fixture_db () in
  let q = "SELECT id FROM frag WHERE organism = 'yeast' ORDER BY id" in
  let before = rows_of (Result.get_ok (Exec.query db ~actor:"u" q)) in
  ignore (run "CREATE INDEX ON frag (organism)");
  let after = rows_of (Result.get_ok (Exec.query db ~actor:"u" q)) in
  check Alcotest.bool "index does not change results" true
    (before.Exec.rows = after.Exec.rows);
  let naive = rows_of (Result.get_ok (Exec.query ~optimize:false db ~actor:"u" q)) in
  check Alcotest.bool "naive plan agrees" true (before.Exec.rows = naive.Exec.rows)

let test_exec_insert_delete () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let run sql = Exec.query db ~actor:"alice" sql in
  ignore (run "CREATE TABLE notes (id int, body string)");
  (match run "INSERT INTO notes VALUES (1, 'a'), (2, 'b'), (3, 'c')" with
  | Ok (Exec.Affected 3) -> ()
  | _ -> Alcotest.fail "insert count");
  (match run "DELETE FROM notes WHERE id < 3" with
  | Ok (Exec.Affected 2) -> ()
  | _ -> Alcotest.fail "delete count");
  let rs = rows_of (Result.get_ok (run "SELECT count(*) FROM notes")) in
  check Alcotest.bool "one left" true
    (match rs.Exec.rows with [ [| D.Int 1 |] ] -> true | _ -> false)

let test_exec_drop_table () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  ignore (Exec.query db ~actor:"alice" "CREATE TABLE scratch (id int)");
  check Alcotest.bool "exists" true (Result.is_ok (Exec.query db ~actor:"alice" "SELECT * FROM scratch"));
  (match Exec.query db ~actor:"alice" "DROP TABLE scratch" with
  | Ok Exec.Executed -> ()
  | _ -> Alcotest.fail "drop failed");
  check Alcotest.bool "gone" true
    (Result.is_error (Exec.query db ~actor:"alice" "SELECT * FROM scratch"));
  (* users cannot drop public tables *)
  ignore (Exec.query db ~actor:Db.loader_actor "CREATE TABLE pub (id int)");
  check Alcotest.bool "public drop blocked for users" true
    (Result.is_error (Exec.query db ~actor:"alice" "DROP TABLE pub"))

let test_exec_permissions () =
  let db, _ = fixture_db () in
  (* alice cannot insert into the loader's public table *)
  check Alcotest.bool "insert blocked" true
    (Result.is_error (Exec.query db ~actor:"alice" "INSERT INTO frag VALUES (9, 'x', dna('A'), 1)"));
  (* but she can read it *)
  check Alcotest.bool "read allowed" true
    (Result.is_ok (Exec.query db ~actor:"alice" "SELECT * FROM frag"))

let test_exec_errors () =
  let db, _ = fixture_db () in
  let err sql = Result.is_error (Exec.query db ~actor:"u" sql) in
  check Alcotest.bool "unknown table" true (err "SELECT * FROM nope");
  check Alcotest.bool "unknown column" true (err "SELECT wat FROM frag");
  check Alcotest.bool "unknown function" true (err "SELECT nope(id) FROM frag");
  check Alcotest.bool "type error in UDF" true
    (err "SELECT gc_content(organism) FROM frag")

let test_exec_group_by_udf () =
  (* GROUP BY over a computed genomic key: rows bucketed by rounded GC *)
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT round(gc_content(seq) * 10), count(*) FROM frag GROUP BY round(gc_content(seq) * 10) ORDER BY count(*) DESC"))
  in
  let total =
    List.fold_left
      (fun acc r -> match r.(1) with D.Int n -> acc + n | _ -> acc)
      0 rs.Exec.rows
  in
  check Alcotest.int "groups cover all rows" 5 total

let test_exec_order_by_udf () =
  let db, _ = fixture_db () in
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT id FROM frag ORDER BY gc_content(seq) DESC LIMIT 1"))
  in
  (* row 3 (GGGGCCCC...) has the highest GC among the fixtures *)
  match rs.Exec.rows with
  | [ [| D.Int id |] ] -> check Alcotest.int "highest GC row" 3 id
  | _ -> Alcotest.fail "order by UDF failed"

let test_exec_three_way_join () =
  let db, run = fixture_db () in
  ignore (run "CREATE TABLE tax (organism string, kingdom string)");
  ignore (run "INSERT INTO tax VALUES ('ecoli', 'bacteria'), ('yeast', 'fungi')");
  ignore (run "CREATE TABLE ranks (kingdom string, rank int)");
  ignore (run "INSERT INTO ranks VALUES ('bacteria', 1), ('fungi', 2)");
  let rs =
    rows_of
      (Result.get_ok
         (Exec.query db ~actor:"u"
            "SELECT f.id, r.rank FROM frag f, tax t, ranks r WHERE f.organism = t.organism AND t.kingdom = r.kingdom ORDER BY f.id"))
  in
  check Alcotest.int "4 joined rows" 4 (List.length rs.Exec.rows)

let test_exec_aggregate_empty () =
  let db, run = fixture_db () in
  ignore (run "CREATE TABLE void (x int)");
  (match Exec.query db ~actor:"u" "SELECT count(*) FROM void" with
  | Ok (Exec.Rows { rows = [ [| D.Int 0 |] ]; _ }) -> ()
  | _ -> Alcotest.fail "count over empty table");
  match Exec.query db ~actor:"u" "SELECT sum(x) FROM void" with
  | Ok (Exec.Rows { rows = [ [| D.Null |] ]; _ }) -> ()
  | _ -> Alcotest.fail "sum over empty table should be NULL"

let test_exec_limit_zero () =
  let db, _ = fixture_db () in
  let rs = rows_of (Result.get_ok (Exec.query db ~actor:"u" "SELECT id FROM frag LIMIT 0")) in
  check Alcotest.int "limit 0" 0 (List.length rs.Exec.rows)

let test_render () =
  let db, _ = fixture_db () in
  let rs =
    rows_of (Result.get_ok (Exec.query db ~actor:"u" "SELECT id, seq FROM frag WHERE id = 2"))
  in
  let text = Exec.render db rs in
  check Alcotest.bool "shows decoded sequence" true
    (let contains hay needle =
       let n = String.length hay and m = String.length needle in
       let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
       at 0
     in
     contains text "ACGTACGTACGT")

(* ---- join strategies --------------------------------------------------- *)

(* run [f] with the hash-join strategy forced on or off, restoring the
   default (enabled) afterwards *)
let with_hash enabled f =
  Exec.set_hash_join_enabled enabled;
  Fun.protect ~finally:(fun () -> Exec.set_hash_join_enabled true) f

let join_fixture () =
  let db = Db.create () in
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error msg -> Alcotest.failf "join fixture: %s (%s)" msg sql
  in
  (* duplicates on both sides, NULL keys on both sides, and a float-keyed
     probe side so Int/Float key equality (1 = 1.0) is exercised *)
  ignore (run "CREATE TABLE l (k int, v int)");
  ignore (run "CREATE TABLE r (k float, w int)");
  ignore
    (run
       "INSERT INTO l VALUES (1, 10), (2, 20), (2, 21), (NULL, 30), (3, 40), (7, 50)");
  ignore
    (run
       "INSERT INTO r VALUES (2.0, 100), (1.0, 200), (2.0, 300), (NULL, 400), (9.0, 500)");
  (db, run)

let join_rows db sql =
  Exec.clear_statement_caches ();
  match Exec.query db ~actor:"u" sql with
  | Ok (Exec.Rows rs) -> rs.Exec.rows
  | Ok _ -> Alcotest.failf "expected rows from %s" sql
  | Error msg -> Alcotest.failf "%s (%s)" msg sql

let test_join_hash_equals_nested () =
  let db, _ = join_fixture () in
  List.iter
    (fun sql ->
      let nested = with_hash false (fun () -> join_rows db sql) in
      let hashed = with_hash true (fun () -> join_rows db sql) in
      check Alcotest.bool ("same rows, same order: " ^ sql) true (nested = hashed))
    [
      "SELECT l.v, r.w FROM l, r WHERE l.k = r.k";
      "SELECT l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY l.v DESC, r.w";
      "SELECT l.v, r.w FROM l, r WHERE l.k = r.k AND r.w > 150";
      "SELECT count(*) FROM l, r WHERE l.k = r.k";
    ]

let test_join_semantics () =
  let db, _ = join_fixture () in
  (* spot-check the actual contents: NULL keys never match (either side),
     duplicates multiply (2 l-rows x 2 r-rows for k=2), 1 = 1.0 matches *)
  let rows =
    join_rows db "SELECT l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY l.v, r.w"
  in
  let as_pairs =
    List.map
      (function [| D.Int v; D.Int w |] -> (v, w) | _ -> Alcotest.fail "shape")
      rows
  in
  check Alcotest.bool "expected join contents" true
    (as_pairs
    = [ (10, 200); (20, 100); (20, 300); (21, 100); (21, 300) ])

let test_join_filter_spans_tables_1_and_3 () =
  (* regression: a join filter over tables 1 and 3 must not be applied
     until table 3 is bound, and must not be dropped. The second query
     references table 3's column without qualification. *)
  let db = Db.create () in
  let run sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error msg -> Alcotest.failf "%s (%s)" msg sql
  in
  ignore (run "CREATE TABLE a (x int)");
  ignore (run "CREATE TABLE b (y int)");
  ignore (run "CREATE TABLE c (z int, tag string)");
  ignore (run "INSERT INTO a VALUES (1), (2), (3)");
  ignore (run "INSERT INTO b VALUES (1), (2)");
  ignore (run "INSERT INTO c VALUES (2, 'two'), (3, 'three'), (5, 'five')");
  List.iter
    (fun sql ->
      let nested = with_hash false (fun () -> join_rows db sql) in
      let hashed = with_hash true (fun () -> join_rows db sql) in
      check Alcotest.bool ("strategies agree: " ^ sql) true (nested = hashed);
      let got =
        List.map (function [| D.Int x |] -> x | _ -> Alcotest.fail "shape") hashed
      in
      (* a.x must equal both b.y and c.z: only x = 2 survives *)
      check Alcotest.(list int) ("rows: " ^ sql) [ 2 ] got)
    [
      "SELECT a.x FROM a, b, c WHERE a.x = b.y AND a.x = c.z";
      (* unqualified z only resolves once table 3 is in scope *)
      "SELECT a.x FROM a, b, c WHERE a.x = b.y AND a.x = z";
    ]

let test_explain_join_strategy () =
  let db, _ = join_fixture () in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
    at 0
  in
  let explain_text sql =
    Exec.clear_statement_caches ();
    match Exec.query db ~actor:"u" ("EXPLAIN " ^ sql) with
    | Ok (Exec.Rows rs) ->
        String.concat "\n"
          (List.filter_map
             (function [| D.Str l |] -> Some l | _ -> None)
             rs.Exec.rows)
    | _ -> Alcotest.fail "EXPLAIN failed"
  in
  let sql = "SELECT l.v, r.w FROM l, r WHERE l.k = r.k" in
  let hash_plan = with_hash true (fun () -> explain_text sql) in
  check Alcotest.bool "hash strategy shown" true
    (contains hash_plan "hash join on l.k = r.k");
  let nested_plan = with_hash false (fun () -> explain_text sql) in
  check Alcotest.bool "nested strategy shown" true
    (contains nested_plan "nested-loop join");
  (* non-equi predicates can never use the hash path *)
  let range_plan =
    with_hash true (fun () ->
        explain_text "SELECT l.v FROM l, r WHERE l.k < r.k")
  in
  check Alcotest.bool "range join stays nested" true
    (contains range_plan "nested-loop join");
  (* planned scan partitions appear once jobs > 1 *)
  let module Par = Genalg_par.Par in
  let prev = Par.jobs () in
  Par.set_jobs 4;
  Fun.protect
    ~finally:(fun () -> Par.set_jobs prev)
    (fun () ->
      let plan = explain_text sql in
      check Alcotest.bool "partitions shown at jobs=4" true
        (contains plan "[partitions=4]"))

let join_property =
  let module Q = QCheck2 in
  let key_list = Q.Gen.(list_size (int_bound 20) (option (int_bound 4))) in
  let prop (ls, rs) =
    let db = Db.create () in
    let run sql =
      match Exec.query db ~actor:Db.loader_actor sql with
      | Ok o -> o
      | Error msg -> failwith (msg ^ " (" ^ sql ^ ")")
    in
    ignore (run "CREATE TABLE l (k int, v int)");
    ignore (run "CREATE TABLE r (k int, w int)");
    let insert table i = function
      | Some k -> ignore (run (Printf.sprintf "INSERT INTO %s VALUES (%d, %d)" table k i))
      | None -> ignore (run (Printf.sprintf "INSERT INTO %s VALUES (NULL, %d)" table i))
    in
    List.iteri (insert "l") ls;
    List.iteri (insert "r") rs;
    List.for_all
      (fun sql ->
        let nested = with_hash false (fun () -> join_rows db sql) in
        let hashed = with_hash true (fun () -> join_rows db sql) in
        nested = hashed)
      [
        "SELECT l.v, r.w FROM l, r WHERE l.k = r.k";
        "SELECT l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY l.v DESC, r.w";
      ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"hash join = nested loop (random tables)"
       QCheck2.Gen.(pair key_list key_list)
       prop)

let suites =
  [
    ( "sqlx.parser",
      [
        tc "roundtrip" `Quick test_parse_roundtrip;
        tc "errors" `Quick test_parse_errors;
        tc "string escapes" `Quick test_string_escapes;
      ] );
    ( "sqlx.eval",
      [
        tc "arithmetic" `Quick test_eval_arithmetic;
        tc "comparisons" `Quick test_eval_comparisons;
        tc "logic" `Quick test_eval_logic;
        tc "like" `Quick test_eval_like;
        tc "builtins" `Quick test_eval_builtins;
      ] );
    ( "sqlx.plan",
      [
        tc "pushdown" `Quick test_plan_pushdown;
        tc "index selection" `Quick test_plan_index_selection;
        tc "range index" `Quick test_plan_range_index;
        tc "predicate ordering" `Quick test_plan_predicate_ordering;
        tc "selectivity model" `Quick test_selectivity_model;
      ] );
    ( "sqlx.exec",
      [
        tc "select/where" `Quick test_exec_select_where;
        tc "udf in where" `Quick test_exec_udf_in_where;
        tc "udf in projection" `Quick test_exec_udf_in_projection;
        tc "order/limit" `Quick test_exec_order_and_limit;
        tc "aggregates" `Quick test_exec_aggregates;
        tc "having" `Quick test_exec_having;
        tc "join" `Quick test_exec_join;
        tc "index equivalence" `Quick test_exec_index_equivalence;
        tc "insert/delete" `Quick test_exec_insert_delete;
        tc "drop table" `Quick test_exec_drop_table;
        tc "permissions" `Quick test_exec_permissions;
        tc "errors" `Quick test_exec_errors;
        tc "group by UDF" `Quick test_exec_group_by_udf;
        tc "order by UDF" `Quick test_exec_order_by_udf;
        tc "three-way join" `Quick test_exec_three_way_join;
        tc "aggregate over empty" `Quick test_exec_aggregate_empty;
        tc "limit zero" `Quick test_exec_limit_zero;
        tc "render" `Quick test_render;
      ] );
    ( "sqlx.join",
      [
        tc "hash = nested (fixture)" `Quick test_join_hash_equals_nested;
        tc "NULLs, duplicates, int=float" `Quick test_join_semantics;
        tc "filter spanning tables 1 and 3" `Quick
          test_join_filter_spans_tables_1_and_3;
        tc "EXPLAIN shows strategy" `Quick test_explain_join_strategy;
        join_property;
      ] );
  ]
