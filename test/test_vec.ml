(* Vectorized (batch-at-a-time) execution: the packed word-level
   kernels against naive decoded references, and the SQL-level
   vectorized ≡ tuple-at-a-time equivalence — same rows, same order,
   same errors, invariant under the jobs setting. *)

module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec
module Vec = Genalg_sqlx.Vec
module Par = Genalg_par.Par
module Obs = Genalg_obs.Obs
open Genalg_gdt
module Q = QCheck2

let check = Alcotest.check
let tc = Alcotest.test_case

(* deterministic generator so failures reproduce *)
let mk_rng seed = ref (seed land 0x3FFFFFFF)

let next rng n =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
  !rng mod n

let random_dna rng len = String.init len (fun _ -> "ACGT".[next rng 4])

(* ---- naive decoded references ----------------------------------------- *)

(* plain substring search over the decoded text; valid reference for
   canonical ACGT pattern + canonical DNA subject, where char_matches
   degenerates to char equality *)
let naive_find ?(start = 0) ~pattern text =
  let m = String.length pattern and n = String.length text in
  if m = 0 then if start <= n then Some start else None
  else
    let rec go i =
      if i + m > n then None
      else if String.sub text i m = pattern then Some i
      else go (i + 1)
    in
    go (max 0 start)

let code_of = function 'A' -> 0 | 'C' -> 1 | 'G' -> 2 | 'T' | 'U' -> 3 | _ -> -1

(* every k-window of canonical bases, with the Kmer_index hash *)
let naive_kmers ~k text =
  let n = String.length text in
  let out = ref [] in
  for i = 0 to n - k do
    let ok = ref true and h = ref 0 in
    for j = i to i + k - 1 do
      let c = code_of (Char.uppercase_ascii text.[j]) in
      if c < 0 then ok := false else h := (!h lsl 2) lor c
    done;
    if !ok then out := (i, !h) :: !out
  done;
  List.rev !out

(* ---- framed_gc_count ---------------------------------------------------- *)

let test_framed_gc () =
  let rng = mk_rng 7 in
  (* Packed2, every length residue mod 4 (partial trailing byte) *)
  for len = 0 to 69 do
    let s = Sequence.dna (random_dna rng len) in
    check Alcotest.(option int)
      (Printf.sprintf "packed2 gc len=%d" len)
      (Some (Sequence.gc_count s))
      (Sequence.framed_gc_count (Sequence.to_bytes s))
  done;
  (* Packed4 via ambiguity codes, odd and even lengths; S counts as GC *)
  List.iter
    (fun text ->
      let s = Sequence.dna text in
      check Alcotest.(option int) ("packed4 gc " ^ text)
        (Some (Sequence.gc_count s))
        (Sequence.framed_gc_count (Sequence.to_bytes s)))
    [ "N"; "ACGTN"; "SSWS"; "GCSNRYKM"; "ACGTSACGTSA" ];
  (* RNA frames work; protein frames report no GC *)
  let r = Sequence.rna "GCGCAU" in
  check Alcotest.(option int) "rna gc" (Some 4)
    (Sequence.framed_gc_count (Sequence.to_bytes r));
  let p = Sequence.protein "GCGC" in
  check Alcotest.(option int) "protein gc" None
    (Sequence.framed_gc_count (Sequence.to_bytes p))

let test_framed_gc_crafted_padding () =
  (* of_bytes does not validate the padding bits of a partial trailing
     byte — a crafted G in the pad must not leak into the count *)
  let s = Sequence.dna "AAAAA" (* len 5: second byte holds 1 base + pad *) in
  let buf = Sequence.to_bytes s in
  let last = Bytes.length buf - 1 in
  (* pad codes 2,2,2 (G) above the one real base (A, code 0) *)
  Bytes.set buf last (Char.chr ((2 lsl 6) lor (2 lsl 4) lor (2 lsl 2)));
  (match Sequence.of_bytes buf with
  | Ok s' ->
      check Alcotest.int "scalar ignores padding" 0 (Sequence.gc_count s')
  | Error e -> Alcotest.failf "crafted frame rejected: %s" e);
  check Alcotest.(option int) "kernel ignores padding" (Some 0)
    (Sequence.framed_gc_count buf)

(* ---- framed_info / frame rejection -------------------------------------- *)

let test_framed_info () =
  let s = Sequence.dna "ACGTACG" in
  let buf = Sequence.to_bytes s in
  (match Sequence.framed_info buf with
  | Some (Sequence.Dna, 7) -> ()
  | _ -> Alcotest.fail "framed_info lost the frame");
  (* truncated payload *)
  check Alcotest.bool "truncated rejected" true
    (Sequence.framed_info (Bytes.sub buf 0 (Bytes.length buf - 1)) = None);
  (* trailing garbage *)
  check Alcotest.bool "oversized rejected" true
    (Sequence.framed_info (Bytes.cat buf (Bytes.make 1 'x')) = None);
  (* corrupt tag byte *)
  let bad = Bytes.copy buf in
  Bytes.set bad 0 (Char.chr 0xFF);
  check Alcotest.bool "bad tag rejected" true (Sequence.framed_info bad = None);
  check Alcotest.bool "empty buffer rejected" true
    (Sequence.framed_info Bytes.empty = None);
  (* kernels refuse what of_bytes refuses *)
  check Alcotest.bool "gc on garbage" true
    (Sequence.framed_gc_count (Bytes.of_string "not a frame") = None);
  check Alcotest.bool "contains on garbage" true
    (Sequence.framed_contains ~pattern:"A" (Bytes.of_string "nope") = None)

(* ---- framed_find / framed_contains -------------------------------------- *)

let find_ref text ?start ~pattern () =
  Sequence.framed_find ?start ~pattern (Sequence.to_bytes (Sequence.dna text))

let test_packed_find () =
  let rng = mk_rng 99 in
  for trial = 0 to 199 do
    let n = next rng 120 in
    let text = random_dna rng n in
    (* planted pattern: random window of the text, lengths crossing the
       31-code word boundary (verify_tail path) *)
    let m = [| 1; 2; 3; 4; 7; 16; 31; 32; 35; 40 |].(next rng 10) in
    let pattern =
      if n >= m && m > 0 then String.sub text (next rng (n - m + 1)) m
      else random_dna rng m
    in
    let start = next rng 8 - 2 in
    let label = Printf.sprintf "trial %d (n=%d m=%d start=%d)" trial n m start in
    match find_ref text ~start ~pattern () with
    | None -> Alcotest.failf "%s: frame rejected" label
    | Some got ->
        check Alcotest.(option int) label (naive_find ~start ~pattern text) got
  done;
  (* absent pattern, empty pattern, pattern longer than text *)
  check Alcotest.(option (option int)) "absent" (Some None)
    (find_ref "ACGTACGTACGT" ~pattern:"TTT" ());
  check Alcotest.(option (option int)) "empty pattern" (Some (Some 0))
    (find_ref "ACGT" ~pattern:"" ());
  check Alcotest.(option (option int)) "empty, start past end" (Some None)
    (find_ref "ACGT" ~start:5 ~pattern:"" ());
  check Alcotest.(option (option int)) "too long" (Some None)
    (find_ref "ACG" ~pattern:"ACGT" ());
  (* lowercase + U patterns normalize like the decoded path *)
  check Alcotest.(option (option int)) "lowercase pattern" (Some (Some 3))
    (find_ref "AAAACGT" ~pattern:"acgt" ());
  check Alcotest.(option (option int)) "U matches T" (Some (Some 2))
    (find_ref "ACTG" ~pattern:"U" ());
  (* IUPAC text falls back to the generic matcher, ambiguity semantics
     preserved: N in the subject matches any pattern base *)
  check Alcotest.(option (option int)) "iupac subject" (Some (Some 1))
    (find_ref "TNCG" ~pattern:"ACG" ());
  check Alcotest.bool "contains agrees" true
    (Sequence.framed_contains ~pattern:"GATTACA"
       (Sequence.to_bytes (Sequence.dna "TTGATTACATT"))
    = Some true)

(* ---- fold_kmers ---------------------------------------------------------- *)

let check_raises_invalid label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  | exception Invalid_argument _ -> ()

let test_fold_kmers () =
  let collect ~k s =
    List.rev (Sequence.fold_kmers ~k (fun acc i h -> (i, h) :: acc) [] s)
  in
  let rng = mk_rng 3 in
  List.iter
    (fun k ->
      for _ = 0 to 24 do
        let text = random_dna rng (next rng 90) in
        check
          Alcotest.(list (pair int int))
          (Printf.sprintf "packed2 k=%d %s" k text)
          (naive_kmers ~k text)
          (collect ~k (Sequence.dna text))
      done)
    [ 1; 3; 5; 31 ];
  (* ambiguity codes reset the window (Packed4 storage) *)
  List.iter
    (fun text ->
      check
        Alcotest.(list (pair int int))
        ("packed4 k=3 " ^ text) (naive_kmers ~k:3 text)
        (collect ~k:3 (Sequence.dna text)))
    [ "ACGNACGT"; "NNN"; "ACNGTNACG"; "ACGTNNACGT" ];
  check_raises_invalid "k=0" (fun () -> collect ~k:0 (Sequence.dna "ACGT"));
  check_raises_invalid "k=32" (fun () -> collect ~k:32 (Sequence.dna "ACGT"))

(* ---- SQL-level equivalence ---------------------------------------------- *)

let mk_db () =
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  db

let run db sql =
  match Exec.query db ~actor:Db.loader_actor sql with
  | Ok o -> o
  | Error msg -> Alcotest.failf "setup: %s (%s)" msg sql

let motif = "ACGTTGCAGGAT"

(* [rows] sequences with varied lengths (every residue mod 4), motif
   planted in ~1/6 of them; returns the populated db *)
let seq_fixture ?(rows = 2600) () =
  let db = mk_db () in
  ignore (run db "CREATE TABLE seqs (id int NOT NULL, organism string, seq dna)");
  let rng = mk_rng 2024 in
  let buf = Buffer.create 4096 in
  let flush_batch () =
    if Buffer.length buf > 0 then begin
      ignore (run db (Printf.sprintf "INSERT INTO seqs VALUES %s" (Buffer.contents buf)));
      Buffer.clear buf
    end
  in
  for i = 1 to rows do
    let len = 1 + next rng 79 in
    let s = Bytes.of_string (random_dna rng len) in
    if i mod 6 = 0 && len > String.length motif then
      Bytes.blit_string motif 0 s
        (next rng (len - String.length motif))
        (String.length motif);
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "(%d, 'org%d', dna('%s'))" i (i mod 5) (Bytes.to_string s));
    if i mod 50 = 0 then flush_batch ()
  done;
  flush_batch ();
  db

let queries =
  [
    "SELECT id FROM seqs WHERE gc_content(seq) >= 0.5";
    "SELECT id FROM seqs WHERE length(seq) > 40";
    Printf.sprintf "SELECT id FROM seqs WHERE contains(seq, '%s')" motif;
    Printf.sprintf
      "SELECT id, organism FROM seqs WHERE gc_content(seq) >= 0.4 AND \
       contains(seq, '%s') AND length(seq) > 20"
      motif;
    "SELECT id FROM seqs WHERE 0.5 <= gc_content(seq) AND 60 >= length(seq)";
    "SELECT organism, count(*) FROM seqs WHERE gc_content(seq) < 0.5 GROUP BY \
     organism ORDER BY organism";
  ]

let run_q db sql =
  Exec.clear_statement_caches ();
  match Exec.query db ~actor:Db.loader_actor sql with
  | Ok (Exec.Rows rs) -> Ok (rs.Exec.columns, rs.Exec.rows)
  | Ok _ -> Error "not rows"
  | Error e -> Error e

let with_jobs n f =
  let prev = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs prev) f

let with_vec b f =
  Exec.set_vectorized_enabled b;
  Fun.protect ~finally:(fun () -> Exec.set_vectorized_enabled true) f

let test_vec_equals_tuple () =
  let db = seq_fixture () in
  List.iter
    (fun sql ->
      let vec = with_vec true (fun () -> run_q db sql) in
      let tup = with_vec false (fun () -> run_q db sql) in
      check Alcotest.bool ("vec = tuple: " ^ sql) true (vec = tup);
      check Alcotest.bool ("returns rows: " ^ sql) true (Result.is_ok vec);
      (* the fixture makes every query select a nonempty proper subset *)
      match vec with
      | Ok (_, rows) ->
          check Alcotest.bool ("selective: " ^ sql) true
            (rows <> [] && List.length rows < 2600)
      | Error _ -> ())
    queries

let test_vec_jobs_invariant () =
  let db = seq_fixture () in
  List.iter
    (fun sql ->
      let r1 = with_jobs 1 (fun () -> run_q db sql) in
      let r4 = with_jobs 4 (fun () -> run_q db sql) in
      check Alcotest.bool ("jobs 1 = jobs 4: " ^ sql) true (r1 = r4))
    queries

let test_vec_error_semantics () =
  let db = seq_fixture () in
  (* the division errors only at id = 1500 — chunk 2 of 3. The error,
     and which row wins, must match the tuple path under any jobs *)
  let sql = "SELECT id FROM seqs WHERE length(seq) >= 0 AND 1 / (1500 - id) = 0" in
  let vec = with_jobs 4 (fun () -> run_q db sql) in
  let tup = with_vec false (fun () -> with_jobs 1 (fun () -> run_q db sql)) in
  check Alcotest.bool "error result identical" true (vec = tup);
  check Alcotest.bool "is the division error" true
    (match vec with Error e -> e = "division by zero" | Ok _ -> false);
  (* NULL sequence: the kernel cannot decide the row, so the tuple
     evaluator's unknown-function error must surface identically *)
  let db2 = mk_db () in
  ignore (run db2 "CREATE TABLE t (id int, seq dna)");
  ignore (run db2 "INSERT INTO t VALUES (1, dna('ACGT')), (2, NULL)");
  let sql2 = "SELECT id FROM t WHERE gc_content(seq) > 0.1" in
  let vec2 = run_q db2 sql2 in
  let tup2 = with_vec false (fun () -> run_q db2 sql2) in
  check Alcotest.bool "null-row error identical" true (vec2 = tup2);
  check Alcotest.bool "is the unknown-function error" true
    (match vec2 with
    | Error e -> e = "unknown function gc_content(string)"
    | Ok _ -> false)

let explain_text db sql =
  match run_q db sql with
  | Ok (_, rows) ->
      String.concat "\n" (List.map (function [| D.Str s |] -> s | _ -> "") rows)
  | Error e -> Alcotest.failf "explain failed: %s" e

let has_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_vec_explain () =
  let db = seq_fixture ~rows:300 () in
  let sql = "SELECT id FROM seqs WHERE gc_content(seq) >= 0.5" in
  let plan = explain_text db ("EXPLAIN " ^ sql) in
  check Alcotest.bool "EXPLAIN names the kernel" true
    (has_sub plan "vec [packed-gc(seq)]");
  let prof = explain_text db ("EXPLAIN ANALYZE " ^ sql) in
  check Alcotest.bool "ANALYZE reports batches" true (has_sub prof "[vec batches=");
  check Alcotest.bool "ANALYZE reports the kernel" true
    (has_sub prof "kernels=[packed-gc(seq)]");
  let multi =
    explain_text db
      (Printf.sprintf
         "EXPLAIN SELECT id FROM seqs WHERE length(seq) > 10 AND contains(seq, \
          '%s')"
         motif)
  in
  check Alcotest.bool "multiple kernels listed" true
    (has_sub multi "packed-len(seq)" && has_sub multi "packed-contains(seq)");
  (* unresolvable shapes stay unannotated *)
  let none = explain_text db "EXPLAIN SELECT id FROM seqs WHERE organism = 'org1'" in
  check Alcotest.bool "no kernel, no annotation" true (not (has_sub none "vec ["));
  with_vec false (fun () ->
      let off = explain_text db ("EXPLAIN " ^ sql) in
      check Alcotest.bool "disabled: no annotation" true (not (has_sub off "vec [")))

let test_vec_counters () =
  let db = seq_fixture ~rows:300 () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let batches = Obs.counter "sqlx.vec.batches" in
      let kernel_rows = Obs.counter "sqlx.vec.kernel_rows" in
      let b0 = Obs.value batches and k0 = Obs.value kernel_rows in
      (match run_q db "SELECT id FROM seqs WHERE gc_content(seq) >= 0.5" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "query failed: %s" e);
      check Alcotest.bool "batches counted" true (Obs.value batches > b0);
      check Alcotest.bool "kernel rows counted" true (Obs.value kernel_rows > k0))

(* ---- properties ---------------------------------------------------------- *)

let dna_gen =
  Q.Gen.(
    let letter = map (fun i -> "ACGT".[i]) (int_bound 3) in
    map
      (fun cs -> String.init (List.length cs) (List.nth cs))
      (list_size (int_bound 120) letter))

let iupac_gen =
  Q.Gen.(
    let letters = "ACGTRYSWKMBDHVN" in
    let letter = map (fun i -> letters.[i]) (int_bound (String.length letters - 1)) in
    map
      (fun cs -> String.init (List.length cs) (List.nth cs))
      (list_size (int_bound 120) letter))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

let kernel_props =
  [
    qtest "framed gc = scalar gc (iupac)" iupac_gen (fun s ->
        let seq = Sequence.dna s in
        Sequence.framed_gc_count (Sequence.to_bytes seq)
        = Some (Sequence.gc_count seq));
    qtest "packed find = naive find" Q.Gen.(pair dna_gen dna_gen) (fun (text, pat) ->
        let pat =
          if String.length pat > 37 then String.sub pat 0 37 else pat
        in
        Sequence.framed_find ~pattern:pat
          (Sequence.to_bytes (Sequence.dna text))
        = Some (naive_find ~pattern:pat text));
    qtest "fold_kmers = naive windows" dna_gen (fun text ->
        naive_kmers ~k:4 text
        = List.rev
            (Sequence.fold_kmers ~k:4
               (fun acc i h -> (i, h) :: acc)
               [] (Sequence.dna text)));
  ]

(* one shared db per property run: table rebuilt per case is too slow,
   so cases draw fresh random predicates over a fixed 600-row table *)
let sql_equiv_prop =
  let db = lazy (seq_fixture ~rows:600 ()) in
  let gen =
    Q.Gen.(
      pair (int_bound 3)
        (pair (int_bound 100) (pair (int_bound 80) (int_bound 1))))
  in
  qtest ~count:40 "SQL: vec = tuple, jobs-invariant" gen
    (fun (shape, (gc100, (len, lit_first))) ->
      let db = Lazy.force db in
      let gc = float_of_int gc100 /. 100. in
      let sql =
        match shape with
        | 0 ->
            if lit_first = 1 then
              Printf.sprintf "SELECT id FROM seqs WHERE %.2f <= gc_content(seq)" gc
            else
              Printf.sprintf "SELECT id FROM seqs WHERE gc_content(seq) >= %.2f" gc
        | 1 -> Printf.sprintf "SELECT id FROM seqs WHERE length(seq) > %d" len
        | 2 ->
            Printf.sprintf
              "SELECT id FROM seqs WHERE contains(seq, '%s') AND length(seq) \
               <= %d"
              (String.sub motif 0 (4 + (len mod 8)))
              len
        | _ ->
            Printf.sprintf
              "SELECT id FROM seqs WHERE gc_content(seq) < %.2f AND \
               contains(seq, 'ACG')"
              gc
      in
      let vec = with_jobs 3 (fun () -> run_q db sql) in
      let tup = with_vec false (fun () -> with_jobs 1 (fun () -> run_q db sql)) in
      vec = tup)

let suites =
  [
    ( "vec.kernels",
      [
        tc "framed gc vs scalar" `Quick test_framed_gc;
        tc "gc ignores crafted padding" `Quick test_framed_gc_crafted_padding;
        tc "frame validation" `Quick test_framed_info;
        tc "packed find vs naive" `Quick test_packed_find;
        tc "fold_kmers vs naive" `Quick test_fold_kmers;
      ] );
    ( "vec.exec",
      [
        tc "vectorized = tuple rows" `Quick test_vec_equals_tuple;
        tc "jobs-invariant" `Quick test_vec_jobs_invariant;
        tc "error semantics identical" `Quick test_vec_error_semantics;
        tc "EXPLAIN surfaces kernels" `Quick test_vec_explain;
        tc "vec counters" `Quick test_vec_counters;
      ] );
    ("vec.props", kernel_props @ [ sql_equiv_prop ]);
  ]
